"""Job lifecycle records — what the metrics layer consumes.

A :class:`JobRecord` is created at arrival and updated by the scheduler
(any algorithm: RTDS or a baseline) and by the harness-level completion
observer. The *protocol* never reads these records: they are measurement,
not mechanism (the paper's algorithm has no job-completion feedback loop).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.types import JobId, SiteId, TaskId, Time


class JobOutcome(enum.Enum):
    """Final classification of one job."""

    PENDING = "pending"
    #: guaranteed on the arrival site by the local test
    ACCEPTED_LOCAL = "accepted_local"
    #: guaranteed on an ACS through the distributed protocol
    ACCEPTED_DISTRIBUTED = "accepted_distributed"
    #: no sphere available / ACS empty
    REJECTED_NO_SPHERE = "rejected_no_sphere"
    #: case (i): M* > d - r
    REJECTED_MAPPER = "rejected_mapper"
    #: validation coupling smaller than |U|
    REJECTED_VALIDATION = "rejected_validation"
    #: deadline passed while the job waited for a lock / protocol budget
    REJECTED_TIMEOUT = "rejected_timeout"
    #: arrival site was partitioned by fault injection; the job never
    #: reached a scheduler (counted against the guarantee ratio — churn
    #: must not make the metric look better by shrinking the denominator)
    LOST_SITE_DOWN = "lost_site_down"
    #: arrival site was up but its (centralized/hierarchical) coordinator
    #: was partitioned and no successor had been elected yet — the job had
    #: nowhere to go (also counted against the guarantee ratio)
    LOST_COORDINATOR = "lost_coordinator"

    @property
    def accepted(self) -> bool:
        return self in (JobOutcome.ACCEPTED_LOCAL, JobOutcome.ACCEPTED_DISTRIBUTED)


@dataclass
class JobRecord:
    """Measurement record of one job instance."""

    job: JobId
    origin: SiteId
    arrival: Time
    deadline: Time
    n_tasks: int
    total_work: float
    outcome: JobOutcome = JobOutcome.PENDING
    #: when the accept/reject decision was made
    decided_at: Optional[Time] = None
    #: sites hosting at least one task (after acceptance)
    hosts: List[SiteId] = field(default_factory=list)
    #: |ACS| during the protocol run (RTDS only)
    acs_size: Optional[int] = None
    #: task -> completion time (filled by the completion observer)
    completions: Dict[TaskId, Time] = field(default_factory=dict)

    @property
    def completed(self) -> bool:
        return self.outcome.accepted and len(self.completions) == self.n_tasks

    @property
    def completion_time(self) -> Optional[Time]:
        if not self.completed:
            return None
        return max(self.completions.values())

    @property
    def met_deadline(self) -> Optional[bool]:
        """True/False once completed; None while running or if rejected."""
        ct = self.completion_time
        if ct is None:
            return None
        return ct <= self.deadline + 1e-9

    @property
    def decision_latency(self) -> Optional[Time]:
        if self.decided_at is None:
            return None
        return self.decided_at - self.arrival
