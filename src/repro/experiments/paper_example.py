"""Exact regeneration of the paper's worked example (§12) and Figure 1.

The instance (reconstructed in DESIGN.md §4): the Fig. 2 DAG with
``c = (6, 4, 4, 2, 5)``, two logical processors with surpluses ``I1 = 0.5``
and ``I2 = 0.4``, ACS delay diameter ``ω = 3``, job release ``r = 0`` and
deadline ``d = 66``.

Expected outputs (all asserted by tests and printed by the benches):

* **Figure 3** (schedule S): p1 = [t1 0–12, t3 13–21, t5 23–33],
  p2 = [t2 0–10, t4 15–20]; makespan M = 33;
* **Figure 4** (schedule S*): p1 = [t1 0–6, t3 7–11, t5 14–19],
  p2 = [t2 0–4, t4 9–11]; makespan M* = 19;
* **Table 1**: case (ii) with scaling factor (d−r)/M = 2.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.adjustment import AdjustmentResult, adjust_trial_mapping, schedule_sstar
from repro.core.config import RTDSConfig
from repro.core.mapper import build_trial_mapping
from repro.core.rtds import RTDSSite
from repro.core.trial_mapping import LogicalProcSpec, TrialMapping
from repro.graphs.generators import linear_chain_dag, paper_example_dag
from repro.metrics.collector import MetricsCollector
from repro.simnet.engine import Simulator
from repro.simnet.topology import build_network, complete
from repro.simnet.trace import Tracer

PAPER_SURPLUSES = (0.5, 0.4)
PAPER_OMEGA = 3.0
PAPER_DEADLINE = 66.0

#: Table 1 of the paper: task -> (ri, di, r(ti), d(ti))
PAPER_TABLE1 = {
    1: (0.0, 12.0, 0.0, 24.0),
    2: (0.0, 10.0, 0.0, 20.0),
    3: (13.0, 21.0, 24.0, 42.0),
    4: (15.0, 20.0, 27.0, 40.0),
    5: (23.0, 33.0, 43.0, 66.0),
}

#: Figure 3 (schedule S): task -> (proc index 0-based, start, end)
PAPER_FIG3 = {
    1: (0, 0.0, 12.0),
    2: (1, 0.0, 10.0),
    3: (0, 13.0, 21.0),
    4: (1, 15.0, 20.0),
    5: (0, 23.0, 33.0),
}

#: Figure 4 (schedule S*): task -> (proc index 0-based, start, end)
PAPER_FIG4 = {
    1: (0, 0.0, 6.0),
    2: (1, 0.0, 4.0),
    3: (0, 7.0, 11.0),
    4: (1, 9.0, 11.0),
    5: (0, 14.0, 19.0),
}


def paper_example_dag_factory(rng):
    """Workload factory: every arriving job is the paper's Fig. 2 DAG.

    Module-level and named on purpose — campaign cell keys and worker
    pools require named callables (see :mod:`repro.experiments.parallel`).
    """
    return paper_example_dag()


def paper_example_config(seed: int = 0, duration: float = 150.0):
    """The paper-example scenario as a runnable :class:`ExperimentConfig`.

    A 4-site complete network with unit delays (the Figure-1 setting, h=1
    spheres) fed a stream of Fig. 2 DAGs. This is the config ``rtds trace
    --paper-example`` renders into a Perfetto timeline: small enough that
    every enroll/map/validate/execute span is individually readable.
    """
    from repro.experiments.runner import ExperimentConfig

    return ExperimentConfig(
        topology="complete",
        topology_kwargs={"n": 4, "delay_range": (1.0, 1.0)},
        algorithm="rtds",
        rtds=RTDSConfig(h=1, surplus_window=100.0),
        rho=0.7,
        duration=duration,
        dag_factory=paper_example_dag_factory,
        seed=seed,
    )


def paper_example_trial_mapping() -> TrialMapping:
    """Run the §12 Mapper on the reconstructed instance."""
    dag = paper_example_dag()
    procs = [
        LogicalProcSpec(index=0, surplus=PAPER_SURPLUSES[0]),
        LogicalProcSpec(index=1, surplus=PAPER_SURPLUSES[1]),
    ]
    return build_trial_mapping(
        job=0, dag=dag, procs=procs, omega=PAPER_OMEGA, job_release=0.0
    )


def paper_example_adjusted() -> Tuple[TrialMapping, AdjustmentResult]:
    """Mapper + §12.2 adjustment (case (ii), scaling factor 2)."""
    tm = paper_example_trial_mapping()
    adj = adjust_trial_mapping(tm, PAPER_DEADLINE)
    return tm, adj


def table1_rows() -> List[Tuple[int, float, float, float, float]]:
    """The reproduced Table 1 as (ti, ri, di, r(ti), d(ti)) rows."""
    tm, _ = paper_example_adjusted()
    return [(t, r0, d0, r1, d1) for (t, r0, d0, r1, d1) in tm.window_table()]


def fig3_schedule() -> Dict[int, Tuple[int, float, float]]:
    """task -> (proc, start, end) of the reproduced schedule S."""
    tm = paper_example_trial_mapping()
    return {t: (tm.assignment[t], tm.start[t], tm.finish[t]) for t in tm.dag}


def fig4_schedule() -> Dict[int, Tuple[int, float, float]]:
    """task -> (proc, start, end) of the reproduced schedule S*."""
    tm = paper_example_trial_mapping()
    ss = schedule_sstar(tm)
    return {t: (tm.assignment[t], ss.start[t], ss.finish[t]) for t in tm.dag}


def run_fig1_scenario(
    n_sites: int = 4, h: int = 1
) -> Tuple[Tracer, MetricsCollector, int]:
    """A minimal live run exercising the full Figure-1 flow.

    A 4-site complete network (unit delays). Site 0 first accepts a long
    local chain job that saturates it, then receives the paper's Fig. 2 DAG
    with a deadline it cannot hold alone — forcing the distributed path:
    ACS construction → trial-mapping → validation → execution.

    Returns (tracer, metrics, distributed_job_id).
    """
    sim = Simulator()
    tracer = Tracer(enabled=True)
    metrics = MetricsCollector()
    cfg = RTDSConfig(h=h, surplus_window=100.0)
    topo = complete(n_sites, delay_range=(1.0, 1.0))
    net = build_network(
        topo, sim, lambda sid, n: RTDSSite(sid, n, cfg, metrics=metrics), tracer
    )
    for sid in net.site_ids():
        net.site(sid).start()
    sim.run()  # PCS construction

    # Job 0: a fat sequential chain that fills site 0 (accepted locally).
    chain = linear_chain_dag(4, c_range=(20.0, 20.0))
    site0 = net.site(0)
    sim.schedule(1.0, lambda: site0.submit_job(0, chain, sim.now + 400.0))
    # Job 1: the Fig. 2 DAG, deadline too tight for the now-busy site 0.
    fig2 = paper_example_dag()
    sim.schedule(2.0, lambda: site0.submit_job(1, fig2, sim.now + 60.0))
    sim.run()
    return tracer, metrics, 1
