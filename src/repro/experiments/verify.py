"""Post-run execution audit.

An oracle that inspects a finished :class:`RunResult` and checks the
*physical* soundness of everything that actually executed — independently
of the protocol logic that scheduled it:

1. no site's compute processor ever ran two chunks at once;
2. every precedence arc of every accepted job was honoured in actual
   execution, including the shortest-path transfer delay when predecessor
   and successor ran on different sites (with result forwarding on);
3. every accepted job ran to completion (no orphaned guarantees);
4. no task of a rejected job ever executed;
5. every executed task took exactly ``c(t) / speed`` of wall-clock
   compute time on its host — the heterogeneity contract (§13 related
   machines): a hard-coded WCET anywhere between admission and execution
   would surface here the moment speeds diverge from 1.0.

Returns a list of human-readable violation strings — empty means the run
is sound. The integration tests call this on every algorithm; it has
caught real executor bugs during development, which is exactly its job.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.routing.reference import dijkstra
from repro.types import EPS, JobId, SiteId, TaskId

Key = Tuple[JobId, TaskId]


def verify_execution(result, check_transfer_delays: bool = True) -> List[str]:
    """Audit one finished run; returns violations (empty list = sound)."""
    issues: List[str] = []
    net = result.network

    # -- gather actual executions from every site's executor ----------------
    where: Dict[Key, SiteId] = {}
    window: Dict[Key, Tuple[float, float]] = {}  # (first start, last end)
    compute_time: Dict[Key, float] = {}  # summed actual chunk durations
    site_speed: Dict[SiteId, float] = {}
    for sid, site in net.sites.items():
        site_speed[sid] = getattr(site, "speed", 1.0)
        executor = getattr(site, "executor", None)
        if executor is None:
            continue
        chunks: List[Tuple[float, float, Key]] = []
        for key, rec in executor.records().items():
            for (s, e) in rec.actual:
                chunks.append((s, e, key))
            if rec.done:
                if key in where:
                    issues.append(f"task {key} executed on sites {where[key]} and {sid}")
                where[key] = sid
                window[key] = (rec.actual_start, rec.actual_end)
                compute_time[key] = sum(e - s for (s, e) in rec.actual)
        # 1. single compute processor: chunks must not overlap
        chunks.sort()
        for (a_s, a_e, a_k), (b_s, b_e, b_k) in zip(chunks, chunks[1:]):
            if b_s < a_e - EPS:
                issues.append(
                    f"site {sid}: overlapping execution {a_k} [{a_s:.3f},{a_e:.3f}) "
                    f"and {b_k} [{b_s:.3f},{b_e:.3f})"
                )

    # -- per-job checks against the workload's DAGs -------------------------
    dags = {spec.job: spec.dag for spec in result.workload}
    dist_cache: Dict[SiteId, Dict[SiteId, float]] = {}
    adj = result.topology.adjacency()

    def dist(a: SiteId, b: SiteId) -> float:
        if a == b:
            return 0.0
        if a not in dist_cache:
            dist_cache[a] = dijkstra(adj, a)
        return dist_cache[a][b]

    for rec in result.collector.records():
        dag = dags.get(rec.job)
        if dag is None:
            continue
        keys = [(rec.job, t) for t in dag.topological_order()]
        if rec.outcome.accepted:
            missing = [k for k in keys if k not in where]
            if missing:
                issues.append(
                    f"job {rec.job} ({rec.outcome.value}): tasks never executed: "
                    f"{[k[1] for k in missing]}"
                )
                continue
            # 5. speed-scaled durations: wall-clock compute == c / speed
            for k in keys:
                expected = dag.complexity(k[1]) / site_speed[where[k]]
                got = compute_time[k]
                if abs(got - expected) > 1e-6 * max(1.0, expected):
                    issues.append(
                        f"job {rec.job} task {k[1]!r}: executed for {got:.6f} on "
                        f"site {where[k]} (speed {site_speed[where[k]]:g}) but "
                        f"c/speed = {expected:.6f}"
                    )
            for u, v in dag.edges:
                ku, kv = (rec.job, u), (rec.job, v)
                end_u = window[ku][1]
                start_v = window[kv][0]
                lag = 0.0
                if check_transfer_delays and where[ku] != where[kv]:
                    lag = dist(where[ku], where[kv])
                if start_v < end_u + lag - 1e-6:
                    issues.append(
                        f"job {rec.job}: edge {u}->{v} violated: "
                        f"{v} started {start_v:.3f} < {u} ended {end_u:.3f} "
                        f"+ transfer {lag:.3f} "
                        f"(sites {where[ku]} -> {where[kv]})"
                    )
        else:
            ran = [k[1] for k in keys if k in where]
            if ran:
                issues.append(
                    f"rejected job {rec.job} had tasks executing: {ran}"
                )
    return issues


def assert_sound(result) -> None:
    """Raise ``AssertionError`` with the full violation list if unsound."""
    issues = verify_execution(result)
    assert not issues, "execution audit failed:\n" + "\n".join(issues)
