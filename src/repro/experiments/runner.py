"""The experiment runner.

``run_experiment(config)`` is the one entry point every benchmark and
example uses. A run has two phases:

1. **setup** — sites run their routing protocol (RTDS: ``2h`` phases;
   baselines needing global routing: hop-diameter phases). The message
   counter is snapshotted at the end: setup traffic is reported separately
   from per-job protocol traffic.
2. **workload** — job arrivals are injected at their (setup-shifted)
   times; the simulation runs until every deadline plus a drain margin has
   passed.

Determinism: everything derives from ``config.seed`` — topology delays,
workload, random-offload choices, and the tie-break rules are seed-free.

The two phases are also exposed separately: :func:`build_resident` runs
phase 1 and returns a live :class:`ResidentNetwork` (the always-on network
the admission service of :mod:`repro.service` keeps feeding), and
``run_experiment(config, workload=...)`` pushes an explicit job list
through a fresh resident — the replay half of the service ≡ batch
differential. (:func:`run_experiment_with_workload` remains as a
deprecated alias for that form.)
"""

from __future__ import annotations

import gc
import warnings
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.baselines.centralized import CentralizedSite
from repro.baselines.focused import FocusedSite
from repro.baselines.local_only import LocalOnlySite
from repro.baselines.random_offload import RandomOffloadSite
from repro.core.config import RTDSConfig
from repro.core.events import JobOutcome, JobRecord
from repro.core.rtds import RTDSSite
from repro.errors import ConfigError, WorkloadError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.membership.election import CoordinatorKit, ElectionConfig
from repro.metrics.collector import MetricsCollector
from repro.metrics.summary import ExperimentSummary, summarize
from repro.routing.oracle import oracle_routing_factory
from repro.routing.reference import dijkstra, hop_diameter
from repro.routing.vectorized import (
    SharedTables,
    hop_diameter_fast,
    phased_tables,
    true_distance_matrix,
    weight_matrix,
)
from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.speeds import resolve_site_speeds
from repro.simnet.topology import Topology, build_network, topology_factory
from repro.simnet.trace import Tracer
from repro.workloads.jobs import JobSpec, Workload
from repro.workloads.scenarios import WorkloadSpec, generate_workload

ALGORITHMS = ("rtds", "local", "centralized", "focused", "random")


@dataclass
class ExperimentConfig:
    """Declarative description of one simulation run."""

    #: Default delays are small relative to task complexities (c ∈ [1, 8]):
    #: distribution can only ever pay off when compute time dominates
    #: propagation delay, the regime loosely-coupled real-time systems are
    #: engineered for (and the implicit regime of the paper's example,
    #: where ω = 3 vs task times 5-12).
    topology: str = "erdos_renyi"
    topology_kwargs: Dict[str, Any] = field(
        default_factory=lambda: {"n": 16, "p": 0.25, "delay_range": (0.2, 1.0)}
    )
    algorithm: str = "rtds"
    rtds: RTDSConfig = field(default_factory=RTDSConfig)
    #: baseline knobs
    focused_period: float = 50.0
    focused_bid_count: int = 3
    centralized_shortlist: int = 8
    random_max_hops: int = 4
    random_tries: int = 3
    #: workload
    rho: float = 0.6
    duration: float = 600.0
    laxity_factor: float = 3.0
    dag_size: str = "small"
    #: custom job-DAG factory ``rng -> Dag`` (overrides ``dag_size``'s mix)
    dag_factory: Optional[Callable] = None
    deadline_jitter: float = 0.2
    hot_fraction: float = 0.0
    hot_sites: int = 0
    #: heterogeneous speeds (§13 uniform machines); None = all 1.0
    speeds: Optional[List[float]] = None
    #: declarative per-site speed profile (E11 heterogeneity): ``None``
    #: (default, byte-identical homogeneous path), an explicit vector, or
    #: a spec string — ``"uniform[:X]"``, ``"skew:K"``, ``"tiers:a,b"``,
    #: ``"lognormal:SIGMA"`` (see :mod:`repro.simnet.speeds`). Resolved
    #: against ``(n_sites, seed)`` and carried on the run's
    #: :class:`~repro.simnet.topology.Topology`; takes precedence over the
    #: legacy cyclic ``speeds`` list.
    site_speeds: Optional[Any] = None
    #: workload family: ``"synthetic"`` (the ``dag_size`` mixes) or
    #: ``"trace:<name>"`` replaying a workflow trace from
    #: :mod:`repro.workloads.traces` (E11). ``dag_factory`` overrides both.
    workload: str = "synthetic"
    #: §13 data-volume model: finite link throughput (None = pure
    #: propagation delay) and per-task data volumes drawn from this range
    link_throughput: Optional[float] = None
    data_volume_range: Optional[tuple] = None
    surplus_window: float = 200.0
    drain_margin: float = 300.0
    #: if set, every site forgets finished history older than one surplus
    #: window, every ``hygiene_interval`` time units (long-run memory
    #: hygiene; provably decision-neutral, see RTDSSite.prune_history).
    #: Note: the post-run execution audit needs full records — leave None
    #: when using repro.experiments.verify.
    hygiene_interval: Optional[float] = None
    #: fault injection (repro.faults): ``None`` or a zero plan leaves the
    #: no-faults code path bit-for-bit untouched. Window/churn times are
    #: relative to workload start; setup/routing always runs fault-free.
    #: Plans with membership *joins* additionally require oracle routing
    #: (the joins repair the shared tables) and an rtds/local algorithm.
    faults: Optional[FaultPlan] = None
    #: leader election for the centralized baseline
    #: (:mod:`repro.membership.election`): ``None`` (default) builds no
    #: election state at all — centralized runs stay byte-identical — and
    #: an :class:`~repro.membership.election.ElectionConfig` arms the
    #: heartbeat + bully protocol on every site at workload start.
    election: Optional[ElectionConfig] = None
    #: routing back end: ``"protocol"`` simulates the phased Bellman–Ford
    #: message-for-message (the default; identity goldens pin it);
    #: ``"oracle"`` installs vectorized precomputed tables
    #: (:mod:`repro.routing.oracle`) — same final routes bit-for-bit, but
    #: setup costs milliseconds instead of simulating O(n * phases * degree)
    #: messages, which is what makes 1000+-site networks (E10) practical.
    #: In oracle mode setup takes zero simulated time and sends zero
    #: messages, so ``setup_time``/``setup_messages`` read 0.
    routing_mode: str = "protocol"
    #: event-loop engine: ``"single"`` (default, one process, the
    #: identity-golden path) or ``"sharded"`` — the E14 multi-process PDES
    #: engine (:mod:`repro.simnet.sharded`): the topology is partitioned
    #: across ``shards`` worker processes synchronized by conservative
    #: time windows (lookahead = min inter-shard link delay). Requires
    #: oracle routing and an rtds/local algorithm; on partition-friendly
    #: cells (continuous delay ranges) it reproduces the single-process
    #: ``scalar_metrics`` exactly (``tests/sharded/``). Defaults are
    #: popped from ``config_fingerprint`` so existing cell keys survive.
    engine_mode: str = "single"
    #: worker-process count for ``engine_mode="sharded"`` (>= 2); must
    #: stay 0 in single mode
    shards: int = 0
    seed: int = 0
    trace: bool = False
    #: telemetry (repro.obs): False (default) keeps every hot path on the
    #: no-op mirror flags — bit-for-bit the untelemetered run (identity
    #: goldens pin this). True attaches an enabled Telemetry to the
    #: engine, network, sites and plans, records protocol-phase spans and
    #: percentile timers, and returns it on ``RunResult.telemetry``.
    #: Observability-only: excluded from campaign cell keys like ``label``.
    telemetry: bool = False
    #: admission plan cache (repro.core.admission_cache): memoized §10
    #: validation endorsements, shared network-wide. Result-invisible by
    #: contract — cache-on reproduces cache-off bit for bit (the
    #: ``tests/cache/`` differential pins it) — so, like ``telemetry``, it
    #: is excluded from ``config_fingerprint``: toggling it cannot change
    #: a campaign cell key.
    admission_cache: bool = True
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ConfigError(f"unknown algorithm {self.algorithm!r}; known: {ALGORITHMS}")
        if self.speeds is not None:
            warnings.warn(
                "ExperimentConfig.speeds is deprecated; pass site_speeds= "
                "(an explicit vector cycles over sites exactly like speeds "
                "did, and string profiles like 'skew:4' are also accepted)",
                DeprecationWarning,
                stacklevel=3,
            )
            if self.site_speeds is None:
                # value-identical migration: resolve_site_speeds cycles an
                # explicit vector with speeds[sid % len] semantics (floats
                # coerced so numpy inputs fingerprint like python lists)
                self.site_speeds = [float(s) for s in self.speeds]
            self.speeds = None
        if self.routing_mode not in ("protocol", "oracle"):
            raise ConfigError(
                f"unknown routing_mode {self.routing_mode!r}; known: ('protocol', 'oracle')"
            )
        if self.site_speeds is not None:
            # validate the spec shape now — a campaign must reject a bad
            # profile before shipping cells to workers (n=2 is a neutral
            # probe; the real resolution happens against the topology)
            resolve_site_speeds(self.site_speeds, 2, self.seed)
        if self.workload != "synthetic":
            from repro.workloads.traces import parse_workload

            try:
                parse_workload(self.workload)
            except WorkloadError as err:
                raise ConfigError(str(err)) from None
            if self.dag_factory is not None:
                raise ConfigError(
                    f"workload={self.workload!r} and dag_factory are mutually "
                    "exclusive (a custom factory already defines the job stream)"
                )
        if (
            self.faults is not None
            and self.faults.perturbs_network()
            and self.algorithm == "rtds"
            and not self.rtds.hardened
        ):
            raise ConfigError(
                "a FaultPlan that perturbs the network requires the hardened "
                "protocol: set RTDSConfig.ack_timeout (see repro.faults.hardened)"
            )
        if self.faults is not None and self.faults.has_joins():
            if self.routing_mode != "oracle":
                raise ConfigError(
                    "membership joins require routing_mode='oracle': joins "
                    "repair the shared vectorized tables (repro.membership)"
                )
            if self.algorithm not in ("rtds", "local"):
                raise ConfigError(
                    "membership joins support algorithms 'rtds' and 'local' "
                    f"only, not {self.algorithm!r} (global-routing baselines "
                    "assume a fixed site set)"
                )
        if self.election is not None and self.algorithm != "centralized":
            raise ConfigError(
                "election requires algorithm='centralized' (only the "
                "centralized baseline has a coordinator to elect)"
            )
        if self.engine_mode not in ("single", "sharded"):
            raise ConfigError(
                f"unknown engine_mode {self.engine_mode!r}; known: ('single', 'sharded')"
            )
        if self.engine_mode == "sharded":
            if self.shards < 2:
                raise ConfigError(
                    f"engine_mode='sharded' needs shards >= 2, got {self.shards}"
                )
            if self.routing_mode != "oracle":
                raise ConfigError(
                    "engine_mode='sharded' requires routing_mode='oracle' "
                    "(each shard solves its closure's tables locally; "
                    "simulated routing cannot cross shard boundaries)"
                )
            if self.algorithm not in ("rtds", "local"):
                raise ConfigError(
                    "engine_mode='sharded' supports algorithms 'rtds' and "
                    f"'local' only, not {self.algorithm!r} (global-state "
                    "baselines assume one shared process)"
                )
            if self.faults is not None and (
                self.faults.perturbs_network() or self.faults.has_joins()
            ):
                raise ConfigError(
                    "engine_mode='sharded' does not support fault plans "
                    "(injector and membership state are single-process)"
                )
            if self.trace:
                raise ConfigError(
                    "engine_mode='sharded' does not support trace=True "
                    "(per-shard tracers cannot interleave into one timeline)"
                )
        elif self.shards:
            raise ConfigError(
                f"shards={self.shards} requires engine_mode='sharded'"
            )

    def resolved_label(self) -> str:
        """The display label: explicit ``label`` or the algorithm name."""
        return self.label or self.algorithm


@dataclass
class RunResult:
    """Everything a bench might want from one finished run."""

    config: ExperimentConfig
    summary: ExperimentSummary
    collector: MetricsCollector
    network: Network
    tracer: Tracer
    topology: Topology
    #: the executed job list; ``None`` on sharded runs (each worker
    #: regenerates the identical seeded workload locally instead of
    #: shipping it back)
    workload: Optional[Workload]
    setup_messages: int
    setup_time: float
    #: the armed fault injector (stats + concrete windows), or None when
    #: the run had no (or a zero) fault plan
    faults: Optional[FaultInjector] = None
    #: the run's telemetry registry (spans/counters/timers), or None when
    #: ``config.telemetry`` was off — feed it to :mod:`repro.obs.export`
    telemetry: Optional[Any] = None
    #: the resident network the run executed on — survivability state
    #: (membership manager, elections, injector) hangs off it
    resident: Optional[Any] = None
    #: partition + window-loop metadata of a sharded run
    #: (:class:`repro.simnet.sharded.ShardRunInfo`), None on single-engine runs
    sharding: Optional[Any] = None

    def site_utilizations(self, start: float, end: float) -> Dict[int, float]:
        """Per-site compute utilization over the window ``[start, end]``."""
        return {
            sid: site.plan.load_between(start, end)
            for sid, site in self.network.sites.items()
        }

    def site_work(self, start: float, end: float) -> Dict[int, float]:
        """Per-site executed *work* (busy time × speed) over ``[start, end]``.

        The capacity-weighted companion of :meth:`site_utilizations`: on
        heterogeneous networks (E11) two equally-busy sites deliver
        different amounts of work, and this is the view that sums to the
        complexity units actually executed.
        """
        return {
            sid: site.plan.work_between(start, end)
            for sid, site in self.network.sites.items()
        }

    def scalar_metrics(self) -> Dict[str, float]:
        """Every numeric summary field as a plain JSON-able dict.

        The serialization boundary between execution and aggregation: this
        is what crosses worker-pool processes and lands in the campaign
        result store (:mod:`repro.experiments.parallel`), so campaigns can
        aggregate without holding networks or collectors. New numeric
        fields on :class:`~repro.metrics.summary.ExperimentSummary` flow
        through automatically; strings and dicts are excluded.
        """
        from dataclasses import fields as dc_fields

        return {
            f.name: getattr(self.summary, f.name)
            for f in dc_fields(self.summary)
            if isinstance(getattr(self.summary, f.name), (int, float))
        }


def _speed_of(config: ExperimentConfig, topo: Topology, sid: int) -> float:
    """Per-site computing power of one run.

    The topology-carried vector (resolved ``site_speeds``) is the single
    source of truth — the legacy ``speeds`` list is folded into
    ``site_speeds`` by ``ExperimentConfig.__post_init__``.
    """
    if topo.site_speeds is not None:
        return topo.site_speeds[sid]
    return 1.0


def _make_sites(
    config: ExperimentConfig,
    topo: Topology,
    sim: Simulator,
    tracer: Tracer,
    metrics: MetricsCollector,
    obs=None,
):
    """Build the live network; returns ``(network, W, shared_by_phases)``.

    The weight matrix and the per-phase-budget
    :class:`~repro.routing.vectorized.SharedTables` are only materialized
    in oracle routing mode and are handed back so the caller can reuse
    them (the centralized coordinator needs all-pairs distances from the
    same matrix; the membership layer repairs the shared tables on joins).
    """
    oracle = config.routing_mode == "oracle"
    needs_global = config.algorithm in ("centralized", "focused", "random")
    W = weight_matrix(topo) if oracle else None
    if needs_global:
        # Global routing phase budget: the network's hop diameter. Only
        # the baselines need it; RTDS's 2h-bounded flooding never does,
        # so wide RTDS runs skip this O(n*(n+m)) oracle entirely.
        if oracle:
            global_phases = max(1, hop_diameter_fast(W))
        else:
            global_phases = max(1, hop_diameter(topo.adjacency()))
    else:
        global_phases = 1

    routing_factory = None
    shared_by_phases: Optional[Dict[int, SharedTables]] = None
    if oracle:
        if config.algorithm == "rtds":
            phase_budget = config.rtds.pcs_phases
        elif config.algorithm == "local":
            phase_budget = 1
        else:
            phase_budget = global_phases
        shared_by_phases = {phase_budget: phased_tables(W, phase_budget)}
        routing_factory = oracle_routing_factory(shared_by_phases)

    if config.algorithm == "rtds":
        rtds_cfg = replace(config.rtds, surplus_window=config.surplus_window)

        def factory(sid: int, net: Network) -> RTDSSite:
            return RTDSSite(
                sid, net, rtds_cfg, speed=_speed_of(config, topo, sid), metrics=metrics,
                routing_factory=routing_factory,
            )

    elif config.algorithm == "local":

        def factory(sid: int, net: Network) -> LocalOnlySite:
            return LocalOnlySite(
                sid, net, surplus_window=config.surplus_window,
                speed=_speed_of(config, topo, sid), metrics=metrics,
                routing_factory=routing_factory,
            )

    elif config.algorithm == "centralized":

        def factory(sid: int, net: Network) -> CentralizedSite:
            return CentralizedSite(
                sid, net, routing_phases=global_phases, coordinator_id=0,
                surplus_window=config.surplus_window,
                speed=_speed_of(config, topo, sid), metrics=metrics,
                routing_factory=routing_factory,
            )

    elif config.algorithm == "focused":

        def factory(sid: int, net: Network) -> FocusedSite:
            return FocusedSite(
                sid, net, routing_phases=global_phases,
                broadcast_period=config.focused_period,
                bid_count=config.focused_bid_count,
                surplus_window=config.surplus_window,
                speed=_speed_of(config, topo, sid), metrics=metrics,
                routing_factory=routing_factory,
            )

    else:  # random

        def factory(sid: int, net: Network) -> RandomOffloadSite:
            return RandomOffloadSite(
                sid, net, routing_phases=global_phases,
                max_hops=config.random_max_hops, tries=config.random_tries,
                seed=config.seed, surplus_window=config.surplus_window,
                speed=_speed_of(config, topo, sid), metrics=metrics,
                routing_factory=routing_factory,
            )

    admission_cache = None
    if config.algorithm == "rtds":
        from repro.core.admission_cache import AdmissionCache

        admission_cache = AdmissionCache(enabled=config.admission_cache)
    net = build_network(
        topo, sim, factory, tracer, obs=obs, admission_cache=admission_cache
    )
    return net, W, shared_by_phases


@contextmanager
def _gc_paused():
    """Pause the cyclic GC for the duration of the simulation loop.

    The event loop allocates heavily (messages, heap entries, payload
    dicts) but almost everything dies young by refcount; generational
    collections buy nothing and cost ~5-10% of the run (measured on the
    E9 macro bench). Cyclic garbage from torn-down networks is still
    reclaimed — collection resumes on exit, and callers running many
    experiments in-process hit it between runs. No-op if GC was already
    off (an outer caller owns the policy).
    """
    if not gc.isenabled():
        yield
        return
    gc.disable()
    try:
        yield
    finally:
        gc.enable()


@dataclass
class ResidentNetwork:
    """A routed, live network with no workload yet — phase 1's product.

    The batch runner builds one, pushes a generated workload through it and
    tears it down; the admission service (:mod:`repro.service`) keeps one
    resident for its whole lifetime and feeds it jobs as they arrive. Both
    submit through :meth:`submit_spec`, which is why the two paths produce
    identical schedules for identical job streams (the service ≡ batch
    differential).

    Job times in a :class:`~repro.workloads.jobs.JobSpec` are
    workload-relative; :attr:`shift` (= setup time) converts them to
    simulation time exactly as the batch runner always has.
    """

    config: ExperimentConfig
    topology: Topology
    sim: Simulator
    tracer: Tracer
    metrics: MetricsCollector
    network: Network
    sites: List[Any]
    setup_messages: int
    setup_time: float
    obs: Optional[Any] = None
    injector: Optional[FaultInjector] = None
    #: number of *base* sites — when the fault plan declares joins, the
    #: topology is extended with latent (link-less) joiner sites and this
    #: records where they start; None means no extension (all sites base)
    n_base: Optional[int] = None
    #: the live symmetric weight matrix (oracle routing only) — mutated
    #: in place by membership joins, shared with ``shared_tables``
    weight: Optional[np.ndarray] = None
    #: phase budget -> SharedTables (oracle routing only); repaired
    #: incrementally by :mod:`repro.membership` on joins
    shared_tables: Optional[Dict[int, SharedTables]] = None
    #: everything an election winner needs to rebuild the coordinator
    #: (centralized runs only)
    coordinator_kit: Optional[CoordinatorKit] = None
    #: armed survivability machinery (see :meth:`arm_faults`)
    membership: Optional[Any] = None
    elections: Optional[Dict[int, Any]] = None
    #: gate-blocked records reaped by hygiene (fault runs only) — plan
    #: state whose prerequisite result was lost for good
    abandoned_reaped: int = 0

    @property
    def shift(self) -> float:
        """Workload-relative → simulation-time offset (== setup time)."""
        return self.setup_time

    @property
    def n_base_sites(self) -> int:
        """Sites that exist from t=0 (workload origins draw from these)."""
        return self.n_base if self.n_base is not None else self.topology.n

    def capacities(self) -> List[float]:
        """Per-base-site computing powers (workload calibration input)."""
        return [
            _speed_of(self.config, self.topology, sid)
            for sid in range(self.n_base_sites)
        ]

    def arm_faults(self, default_horizon: float) -> None:
        """Arm the run's survivability machinery at workload start.

        Safe no-op for configs without faults/election. Order matters:
        the injector first (membership hooks its ``on_site_up`` rejoin
        transition), then membership joins, then elections. ``t0`` is the
        resident's shift so plan times stay workload-relative, exactly as
        the batch runner always armed the injector.
        """
        config = self.config
        plan = config.faults
        if plan is not None and plan.perturbs_network():
            self.injector = FaultInjector(self.network, plan, entropy=config.seed)
            self.injector.arm(t0=self.shift, default_horizon=default_horizon)
        if plan is not None and plan.has_joins():
            from repro.membership.manager import MembershipManager

            self.membership = MembershipManager(self, plan, entropy=config.seed)
            self.membership.arm(t0=self.shift, default_horizon=default_horizon)
        if config.election is not None:
            from repro.membership.election import install_elections

            self.elections = install_elections(self, config.election)

    def submit_spec(self, job: JobSpec) -> None:
        """Submit one job *now* (``sim.now`` should be its shifted arrival).

        Fault-aware: a job arriving on a partitioned site is recorded as
        :attr:`~repro.core.events.JobOutcome.LOST_SITE_DOWN` so churn
        degrades the guarantee ratio instead of shrinking its denominator.
        """
        site = self.network.site(job.origin)
        if self.injector is not None:
            if self.injector.site_down(site.sid):
                self._drop_job(job, site.sid, JobOutcome.LOST_SITE_DOWN, "fault.job_dropped")
                return
            coord = getattr(site, "coordinator_id", None)
            if coord is not None and coord != site.sid and self.injector.site_down(coord):
                # the arrival site is fine but its coordinator is
                # partitioned (and, without election, will never answer):
                # a *named* loss instead of a silently-dropped submission,
                # so centralized churn runs stop looking degenerate
                self._drop_job(
                    job, site.sid, JobOutcome.LOST_COORDINATOR, "fault.job_lost_coordinator"
                )
                return
        site.submit_job(job.job, job.dag, self.shift + job.deadline)

    def _drop_job(self, job: JobSpec, sid: int, outcome: JobOutcome, event: str) -> None:
        """Record a harness-level job loss (site or coordinator down)."""
        self.injector.stats.jobs_dropped += 1
        self.tracer.emit(self.sim.now, event, sid, job=job.job)
        self.metrics.register_job(
            JobRecord(
                job=job.job,
                origin=sid,
                arrival=self.sim.now,
                deadline=self.shift + job.deadline,
                n_tasks=len(job.dag),
                total_work=job.dag.total_complexity(),
            )
        )
        self.metrics.decide(job.job, outcome, self.sim.now)

    def schedule_job(self, job: JobSpec) -> None:
        """Schedule one job's submission at its shifted arrival time."""
        self.sim.schedule_at(self.shift + job.arrival, lambda j=job: self.submit_spec(j))

    def prune_pass(self) -> None:
        """One memory-hygiene pass: sites forget settled history older than
        one surplus window (decision-neutral, see ``RTDSSite.prune_history``).

        Fault runs additionally reap abandoned executor records —
        committed reservations whose prerequisite result was lost for
        good (:meth:`~repro.sched.executor.PlanExecutor.reap_abandoned`);
        the no-fault path never reaps, keeping it byte-identical.
        """
        keep_from = self.sim.now - self.config.surplus_window
        if keep_from <= 0:
            return
        for s in self.sites:
            prune = getattr(s, "prune_history", None)
            if prune is not None:
                prune(keep_from)
        if self.injector is not None:
            for s in self.sites:
                self.abandoned_reaped += s.executor.reap_abandoned(keep_from)

    def unfinished_plan_records(self) -> int:
        """Total committed-but-unfinished executor records across all sites.

        The soak's leak audit: after a full drain this must be 0 — anything
        else is a reservation that leaked out of a plan.
        """
        return sum(s.executor.n_unfinished() for s in self.sites)


def build_resident(config: ExperimentConfig) -> ResidentNetwork:
    """Phase 1 alone: build the network, run routing, return it live.

    Everything :func:`run_experiment` does before the workload exists —
    identical construction order, so a resident built here and fed the
    batch workload reproduces ``run_experiment`` exactly.
    """
    rng = np.random.default_rng(config.seed)
    topo = topology_factory(config.topology, rng=rng, **config.topology_kwargs)
    # Resolve the heterogeneity profile once and carry it on the topology —
    # the single source of truth every later consumer (site construction,
    # workload calibration, post-run audits) reads. site_speeds=None keeps
    # the topology untouched: the homogeneous path stays byte-identical.
    site_speed_vec = resolve_site_speeds(config.site_speeds, topo.n, config.seed)
    if site_speed_vec is not None:
        topo = topo.with_site_speeds(site_speed_vec)

    # Membership joins: pre-build the joiners as latent, link-less sites.
    # Isolated rows are inert for the phased Bellman–Ford (no neighbours,
    # infinite columns never offered), so the base sites' tables — and
    # everything downstream — are byte-identical to the unextended run
    # until the first join links up.
    n_base: Optional[int] = None
    n_joins = config.faults.n_join_sites() if config.faults is not None else 0
    if n_joins > 0:
        n_base = topo.n
        pad = (1.0,) * n_joins
        topo = Topology(
            n_base + n_joins,
            topo.edges,
            topo.name + f"+join{n_joins}",
            site_speeds=(topo.site_speeds + pad) if topo.site_speeds is not None else None,
        )

    sim = Simulator()
    tracer = Tracer(enabled=config.trace)
    metrics = MetricsCollector()
    obs = None
    if config.telemetry:
        from repro.obs import Telemetry

        obs = Telemetry(enabled=True, seed=config.seed)
        # engine samples at run() boundaries only; sites/plans mirror
        # obs.enabled into their obs_on flags at construction
        sim.obs = obs
    net, W, shared_tables = _make_sites(config, topo, sim, tracer, metrics, obs=obs)
    if config.link_throughput is not None:
        # applied post-construction so _make_sites stays algorithm-generic
        for link in net.links():
            link.throughput = config.link_throughput

    sites = [net.site(sid) for sid in net.site_ids()]
    for s in sites:
        s.start()
    coordinator_kit: Optional[CoordinatorKit] = None
    if config.algorithm == "centralized":
        if config.routing_mode == "oracle":
            # converged min-plus == true shortest delays, one batched pass
            # (reuses the weight matrix _make_sites built for this run)
            dist = true_distance_matrix(W)
            distances = {
                sid: {
                    d: float(dist[sid, d])
                    for d in range(topo.n)
                    if np.isfinite(dist[sid, d])
                }
                for sid in range(topo.n)
            }
        else:
            adj = topo.adjacency()
            distances = {sid: dijkstra(adj, sid) for sid in adj}
        coordinator_kit = CoordinatorKit(
            all_sites=dict(net.sites),
            distances=distances,
            shortlist=config.centralized_shortlist,
        )
        coord = net.site(0)
        coord.install_coordinator(
            dict(net.sites), distances, shortlist=config.centralized_shortlist
        )

    # --- phase 1: setup (routing; focused also primes its surplus tables).
    # Routing drains on its own; focused's periodic broadcast never stops,
    # so bound setup by one broadcast round trip.
    setup_cm = obs.timeit("run.setup") if obs is not None else nullcontext()
    with setup_cm:
        if config.algorithm == "focused":
            sim.run(until=config.focused_period * 1.5)
            while not all(s.routing.done for s in sites):
                sim.run(until=sim.now + config.focused_period)
        else:
            sim.run(until=None)
    for s in sites:
        if not s.routing.done:
            raise ConfigError(
                f"site {s.sid}: routing did not finish during setup "
                f"(algorithm={config.algorithm})"
            )
    setup_messages = net.stats.total
    setup_time = sim.now
    return ResidentNetwork(
        config=config,
        topology=topo,
        sim=sim,
        tracer=tracer,
        metrics=metrics,
        network=net,
        sites=sites,
        setup_messages=setup_messages,
        setup_time=setup_time,
        obs=obs,
        n_base=n_base,
        weight=W,
        shared_tables=shared_tables,
        coordinator_kit=coordinator_kit,
    )


def run_experiment(
    config: ExperimentConfig, workload: Optional[Workload] = None
) -> RunResult:
    """Build, run, summarize one experiment — the single batch entry point.

    With the default ``workload=None`` the config's seeded batch workload
    is generated and run. Passing an explicit
    :class:`~repro.workloads.jobs.Workload` replays that job list through
    a fresh resident network instead — the replay half of the service ≡
    batch differential (e.g. an open-loop stream captured via
    :func:`repro.workloads.openloop.open_loop_workload`). An explicit
    workload makes the config's own generation knobs
    (``rho``/``duration``/``dag_size``) irrelevant; everything else
    applies as usual.

    ``engine_mode="sharded"`` dispatches to the multi-process PDES
    coordinator (:func:`repro.simnet.sharded.run_sharded`); explicit
    workload replay stays single-process.
    """
    if config.engine_mode == "sharded":
        if workload is not None:
            raise ConfigError(
                "explicit workload replay requires engine_mode='single' "
                "(sharded workers regenerate the seeded batch workload)"
            )
        from repro.simnet.sharded.coordinator import run_sharded

        return run_sharded(config)
    with _gc_paused():
        resident = build_resident(config)
        if workload is None:
            workload = _generate_batch_workload(config, resident)
        return _execute_workload(resident, workload)


def run_experiment_with_workload(
    config: ExperimentConfig, workload: Workload
) -> RunResult:
    """Deprecated: call ``run_experiment(config, workload=...)`` instead."""
    warnings.warn(
        "run_experiment_with_workload() is deprecated; "
        "call run_experiment(config, workload=...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return run_experiment(config, workload=workload)


def _generate_batch_workload(
    config: ExperimentConfig, resident: ResidentNetwork
) -> Workload:
    """Phase 2's job list: the seeded batch workload of ``config``.

    Origins draw from the *base* sites only — latent joiners receive no
    arrivals (they can still host offloaded tasks once joined)."""
    dag_factory = config.dag_factory
    if dag_factory is None and config.workload != "synthetic":
        from repro.workloads.traces import parse_workload, trace_dag_factory

        _, trace_name = parse_workload(config.workload)
        dag_factory = trace_dag_factory(trace_name)
    if config.data_volume_range is not None:
        from repro.graphs.transform import with_volumes_factory
        from repro.workloads.scenarios import mixed_dag_factory

        base_factory = dag_factory or mixed_dag_factory(config.dag_size)
        dag_factory = with_volumes_factory(base_factory, config.data_volume_range)
    spec = WorkloadSpec(
        n_sites=resident.n_base_sites,
        rho=config.rho,
        duration=config.duration,
        laxity_factor=config.laxity_factor,
        dag_size=config.dag_size,
        dag_factory=dag_factory,
        deadline_jitter=config.deadline_jitter,
        hot_fraction=config.hot_fraction,
        hot_sites=config.hot_sites,
        capacities=resident.capacities(),
        seed=config.seed + 7,
    )
    return generate_workload(spec)


def _execute_workload(resident: ResidentNetwork, workload: Workload) -> RunResult:
    """Run a job list through a resident to completion and summarize."""
    config = resident.config
    sim = resident.sim
    obs = resident.obs

    resident.arm_faults(default_horizon=config.duration)

    for job in workload:
        resident.schedule_job(job)
    horizon = resident.shift + workload.last_deadline() + config.drain_margin
    if config.hygiene_interval is not None:
        interval = config.hygiene_interval

        def hygiene_tick() -> None:
            resident.prune_pass()
            if sim.now + interval < horizon:
                sim.schedule(interval, hygiene_tick)

        sim.schedule(interval, hygiene_tick)
    workload_cm = obs.timeit("run.workload") if obs is not None else nullcontext()
    with workload_cm:
        sim.run(until=horizon)

    if obs is not None:
        _record_run_telemetry(
            obs, resident.metrics, sim, resident.setup_time, resident.network
        )

    summary = summarize(
        config.resolved_label(),
        resident.metrics,
        n_sites=resident.topology.n,
        total_messages=resident.network.stats.total,
        setup_messages=resident.setup_messages,
    )
    return RunResult(
        config=config,
        summary=summary,
        collector=resident.metrics,
        network=resident.network,
        tracer=resident.tracer,
        topology=resident.topology,
        workload=workload,
        setup_messages=resident.setup_messages,
        setup_time=resident.setup_time,
        faults=resident.injector,
        telemetry=obs,
        resident=resident,
    )


def _record_run_telemetry(
    obs, metrics: MetricsCollector, sim: Simulator, setup_time: float, net
) -> None:
    """End-of-run telemetry: execute spans for every admitted job + gauges.

    Execution spans are derived from the collector's records (decision
    time -> last task completion) rather than instrumented inside each
    algorithm's execution path, so every admitted job — RTDS or baseline,
    local or distributed — renders a ``phase.execute`` interval on its
    origin site's trace lane, uniformly. Failed deadlines render ``ok:
    false``; a job with no recorded completions gets a zero-width span at
    its decision time.

    Per-type message counters fold in here from the network's exact
    :class:`~repro.simnet.network.MessageStats` rather than incrementing a
    registry counter per transmission — same final values, zero additional
    per-message work (the E9 ``macro_obs`` overhead gate's largest win).
    """
    for mtype, n in net.stats.count.items():
        obs.inc("net.msgs." + mtype, float(n))
    obs.gauge("net.bytes", float(net.stats.total_volume))
    for rec in metrics.records():
        if not rec.outcome.accepted or rec.decided_at is None:
            continue
        t_end = max(rec.completions.values()) if rec.completions else rec.decided_at
        obs.span(
            "phase.execute",
            rec.decided_at,
            t_end,
            site=rec.origin,
            key=rec.job,
            ok=rec.met_deadline is not False,
            hosts=len(rec.hosts) if rec.hosts else 0,
        )
    cache = getattr(net, "admission_cache", None)
    if cache is not None:
        # plain-int counters folded in once at run end — the cache itself
        # never touches the registry on the hot path
        for name, value in cache.stats().items():
            obs.gauge("admission_cache." + name, float(value))
        obs.gauge("admission_cache.hit_rate", cache.hit_rate())
    obs.gauge("run.setup_sim_time", setup_time)
    obs.gauge("run.sim_time", sim.now)
    obs.gauge("run.jobs_arrived", metrics.n_arrived())
    obs.gauge("run.jobs_accepted", metrics.n_accepted())
    obs.sample_rss()
