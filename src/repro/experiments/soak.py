"""E12 — the long-lived admission soak.

One resident network, one open-loop arrival stream, 10^5–10^6 jobs:
:func:`run_soak` drives the admission service of :mod:`repro.service`
until ``target_jobs`` have been submitted and the network has drained,
sampling as it goes. The report answers the questions batch experiments
cannot:

* does throughput (jobs/sec, wall) hold over the whole run?
* do the *interval* admission-latency percentiles (windowed
  :meth:`~repro.obs.ReservoirTimer.snapshot`, not the whole-run average)
  stay put?
* is memory flat? — current RSS over time, collector records folded
  (:meth:`~repro.metrics.collector.MetricsCollector.fold_before`), sites
  pruned, and zero leaked executor records after the drain.

Determinism: the simulated side (jobs, decisions, GR, admission-latency
percentiles) is a pure function of the seeds; only wall-clock and RSS
figures are machine-dependent. ``BENCH_e12.json`` gates the former
tightly and the latter loosely.

CLI: ``rtds soak`` (see EXPERIMENTS.md §E12).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import pathlib
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigError
from repro.experiments.runner import ExperimentConfig
from repro.obs.telemetry import current_rss_mb
from repro.service.admission import AdmissionService
from repro.service.resident import ResidentSimulation
from repro.workloads.arrivals import PoissonProcess, parse_arrival_spec
from repro.workloads.openloop import OpenLoopSpec, open_loop_jobs, open_loop_rate

#: the E12 network: the E9 macro bench's 48-site wide-area graph
SOAK_TOPOLOGY = {"n": 48, "p": 4.0 / 47.0, "delay_range": (0.2, 1.0)}


@dataclass
class SoakConfig:
    """Declarative description of one soak run."""

    n_sites: int = 48
    #: arrival spec (:func:`~repro.workloads.arrivals.parse_arrival_spec`)
    #: or "auto": Poisson calibrated to ``rho`` of aggregate capacity
    arrival: str = "auto"
    rho: float = 0.6
    target_jobs: int = 100_000
    queue_capacity: int = 1024
    laxity_factor: float = 3.0
    dag_size: str = "small"
    deadline_jitter: float = 0.2
    #: decisions between samples (also the latency snapshot window)
    sample_every: int = 2_000
    #: simulated-time units between hygiene passes (prune + fold)
    hygiene_interval: float = 200.0
    surplus_window: float = 200.0
    drain_margin: float = 300.0
    algorithm: str = "rtds"
    routing_mode: str = "protocol"
    seed: int = 0
    telemetry: bool = False
    #: fault spec (:meth:`~repro.faults.plan.FaultPlan.from_spec`), e.g.
    #: "sites=4,downtime=40,joins=2" — the resident arms it before intake
    faults: Optional[str] = None
    #: window the plan draws its events over; defaults to the config's
    #: batch ``duration`` (usually too short for a soak — set it)
    fault_horizon: Optional[float] = None
    #: acceptance-rate floor of the admission breaker (None = breaker off)
    degraded_floor: Optional[float] = None
    degraded_window: int = 200

    def __post_init__(self) -> None:
        if self.target_jobs < 1:
            raise ConfigError("target_jobs must be >= 1")
        if self.sample_every < 1:
            raise ConfigError("sample_every must be >= 1")
        if self.arrival != "auto":
            parse_arrival_spec(self.arrival)  # fail before building anything
        if self.faults:
            self.fault_plan()  # fail before building anything

    def fault_plan(self):
        """The parsed :class:`~repro.faults.plan.FaultPlan` (None without one)."""
        if not self.faults:
            return None
        from repro.faults import FaultPlan

        return FaultPlan.from_spec(self.faults)

    def experiment_config(self) -> ExperimentConfig:
        """The resident network's config (workload knobs unused)."""
        topo = dict(SOAK_TOPOLOGY)
        if self.n_sites != 48:
            topo = {
                "n": self.n_sites,
                "p": min(1.0, 4.0 / max(1, self.n_sites - 1)),
                "delay_range": (0.2, 1.0),
            }
        plan = self.fault_plan()
        kwargs = {}
        if plan is not None and plan.perturbs_network() and self.algorithm == "rtds":
            from repro.core.config import RTDSConfig
            from repro.faults import hardened

            kwargs["rtds"] = hardened(RTDSConfig())
        return ExperimentConfig(
            topology="erdos_renyi",
            topology_kwargs=topo,
            algorithm=self.algorithm,
            routing_mode=self.routing_mode,
            surplus_window=self.surplus_window,
            drain_margin=self.drain_margin,
            seed=self.seed,
            telemetry=self.telemetry,
            label=f"soak[{self.arrival}]",
            faults=plan,
            **kwargs,
        )

    def open_loop_spec(self, capacities: List[float]) -> OpenLoopSpec:
        """The job stream: arrival process resolved against the network."""
        if self.arrival == "auto":
            process = PoissonProcess(
                open_loop_rate(
                    self.rho, capacities, dag_size=self.dag_size, seed=self.seed
                )
            )
        else:
            process = parse_arrival_spec(self.arrival)
        return OpenLoopSpec(
            n_sites=self.n_sites,
            process=process,
            laxity_factor=self.laxity_factor,
            dag_size=self.dag_size,
            deadline_jitter=self.deadline_jitter,
            seed=self.seed + 7,
        )


@dataclass
class SoakSample:
    """One point on the soak's trajectory (taken every ``sample_every``)."""

    jobs_decided: int
    wall_s: float
    sim_time: float
    #: interval throughput since the previous sample (wall clock)
    jobs_per_sec: float
    guarantee_ratio: float
    #: interval (windowed) admission-latency percentiles, simulated time
    lat_p50: float
    lat_p99: float
    queue_depth: int
    rss_mb: float
    #: collector records still live (unfolded) — flat when folding works
    live_records: int
    folded: int


@dataclass
class SoakReport:
    """Everything one soak run measured."""

    config: Dict[str, object]
    n_jobs: int
    wall_s: float
    jobs_per_sec: float
    sim_time: float
    guarantee_ratio: float
    effective_ratio: float
    #: cumulative admission-latency percentiles (simulated time)
    lat_p50: float
    lat_p99: float
    lat_mean: float
    max_queue_depth: int
    backpressure_waits: int
    rss_peak_mb: float
    rss_final_mb: float
    #: RSS growth over the final 80% of the run as a fraction of peak —
    #: the < 0.05 memory-flatness acceptance gate
    rss_growth_final80: float
    #: executor records leaked past the drain (must be 0)
    leaked_unfinished: int
    live_records_final: int
    folded_total: int
    samples: List[SoakSample] = field(default_factory=list)

    def scalar_metrics(self) -> Dict[str, float]:
        """Numeric fields only (the bench-gate surface)."""
        out = {}
        for k, v in asdict(self).items():
            if isinstance(v, (int, float)):
                out[k] = v
        return out

    def write_samples_jsonl(self, path: pathlib.Path) -> None:
        """One JSON object per sample — the nightly soak's CI artifact."""
        with open(path, "w") as fh:
            for s in self.samples:
                fh.write(json.dumps(asdict(s), sort_keys=True) + "\n")


def run_soak(
    config: SoakConfig,
    progress: Optional[Callable[[SoakSample], None]] = None,
) -> SoakReport:
    """Run one soak to completion (synchronous wrapper over the service)."""
    res = ResidentSimulation(
        config.experiment_config(), fold=True, fault_horizon=config.fault_horizon
    )
    spec = config.open_loop_spec(res.capacities())
    svc = AdmissionService(
        res,
        queue_capacity=config.queue_capacity,
        hygiene_interval=config.hygiene_interval,
        degraded_floor=config.degraded_floor,
        degraded_window=config.degraded_window,
    )

    samples: List[SoakSample] = []
    t0 = time.perf_counter()
    rss0 = current_rss_mb() or 0.0
    state = {"last_wall": 0.0, "last_decided": 0, "next_at": config.sample_every}

    def take_sample() -> SoakSample:
        wall = time.perf_counter() - t0
        decided = svc.stats.decided
        dt = wall - state["last_wall"]
        rate = (decided - state["last_decided"]) / dt if dt > 0 else 0.0
        window = svc.latency.snapshot(qs=(50.0, 99.0))
        sample = SoakSample(
            jobs_decided=decided,
            wall_s=wall,
            sim_time=res.now,
            jobs_per_sec=rate,
            guarantee_ratio=res.guarantee_ratio(),
            lat_p50=window.get("p50", float("nan")),
            lat_p99=window.get("p99", float("nan")),
            queue_depth=svc.queue_depth,
            rss_mb=current_rss_mb() or rss0,
            live_records=res.live_records(),
            folded=res.resident.metrics.n_folded,
        )
        samples.append(sample)
        state["last_wall"] = wall
        state["last_decided"] = decided
        if progress is not None:
            progress(sample)
        return sample

    async def drive() -> None:
        async with svc:
            for job in itertools.islice(open_loop_jobs(spec), config.target_jobs):
                await svc.submit(job)
                if svc.stats.decided >= state["next_at"]:
                    take_sample()
                    state["next_at"] = svc.stats.decided + config.sample_every

    asyncio.run(drive())
    final = take_sample()

    wall = final.wall_s
    peak = max(s.rss_mb for s in samples)
    cut = config.target_jobs * 0.2
    early = [s for s in samples if s.jobs_decided >= cut]
    rss_at_20 = early[0].rss_mb if early else samples[0].rss_mb
    growth = max(0.0, final.rss_mb - rss_at_20)
    lat = svc.latency.percentiles(qs=(50.0, 99.0))
    metrics = res.resident.metrics

    return SoakReport(
        config=asdict(config),
        n_jobs=svc.stats.decided,
        wall_s=wall,
        jobs_per_sec=svc.stats.decided / wall if wall > 0 else 0.0,
        sim_time=res.now,
        guarantee_ratio=metrics.guarantee_ratio(),
        effective_ratio=metrics.effective_ratio(),
        lat_p50=lat["p50"],
        lat_p99=lat["p99"],
        lat_mean=svc.latency.mean,
        max_queue_depth=svc.stats.max_queue_depth,
        backpressure_waits=svc.stats.backpressure_waits,
        rss_peak_mb=peak,
        rss_final_mb=final.rss_mb,
        rss_growth_final80=growth / peak if peak > 0 else 0.0,
        leaked_unfinished=res.unfinished_plan_records(),
        live_records_final=res.live_records(),
        folded_total=metrics.n_folded,
        samples=samples,
    )
