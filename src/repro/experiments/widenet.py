"""E10 — the wide-network scale-out campaign (256 to 1024+ sites).

The paper's title promises "arbitrary **wide** networks"; this module
makes that a measured, repeatable workload instead of an extrapolation
from 48-site soaks. A cell is one seeded RTDS run on a large
random-geometric or Barabási–Albert topology with the oracle routing
back end (:mod:`repro.routing.oracle`) — vectorized table construction
plus O(degree) lazy per-site state — which is what keeps a 1024-site
cell's setup in fractions of a second.

Two topology families, chosen to bracket the space:

* ``geometric`` — random geometric graphs (mean degree ~8,
  delay proportional to Euclidean distance): large hop diameter, PCS
  membership stays genuinely local. The paper's intended regime.
* ``barabasi_albert`` — scale-free preferential attachment (m=3): tiny
  hop diameter, so a 2h-hop sphere sees most of the network through the
  hubs. The stress case for per-site state and sphere construction.

:func:`sweep_widenet` fans the (kind, size, seed) matrix through the
parallel campaign runtime (:mod:`repro.experiments.parallel`), so
``rtds sweep-widenet --jobs N --store DIR --resume`` scales across
cores and survives interruption like every other campaign.
``benchmarks/bench_e10_widenet.py`` adds the wall-clock and peak-RSS
instrumentation and the committed-baseline speedup gate.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.experiments.parallel import (
    CampaignStore,
    Cell,
    CellResult,
    ProgressFn,
    cell_key,
    raise_on_failures,
    run_cells,
)
from repro.experiments.runner import ExperimentConfig
from repro.metrics.stats import mean_confidence_interval
from repro.workloads.scenarios import widenet_workload_defaults

#: the E10 cell axes: topology families x network sizes
E10_KINDS: Tuple[str, ...] = ("geometric", "barabasi_albert")
E10_SIZES: Tuple[int, ...] = (256, 512, 1024)

#: target mean degree of the geometric family (keeps spheres local as n grows)
GEO_MEAN_DEGREE = 8.0
#: preferential-attachment edges per new site
BA_M = 3


def widenet_topology(kind: str, n: int) -> Tuple[str, Dict[str, Any]]:
    """``(topology, topology_kwargs)`` of one E10 cell.

    Geometric cells shrink the connection radius as ``sqrt(1/n)`` so the
    mean degree (and with it the sphere size) stays constant while the
    hop diameter grows — the "wide" in wide networks. Barabási–Albert
    cells keep ``m`` constant, so hop diameter stays small and sphere
    sizes grow instead.
    """
    if n < 8:
        raise ConfigError(f"widenet cells start at 8 sites, got {n}")
    if kind == "geometric":
        radius = float(np.sqrt(GEO_MEAN_DEGREE / (np.pi * n)))
        return "geometric", {"n": n, "radius": radius}
    if kind == "barabasi_albert":
        return "barabasi_albert", {"n": n, "m": BA_M, "delay_range": (0.2, 1.0)}
    raise ConfigError(f"unknown widenet kind {kind!r}; known: {E10_KINDS}")


def widenet_config(
    kind: str,
    n: int,
    seed: int = 0,
    base: Optional[ExperimentConfig] = None,
    routing_mode: str = "oracle",
) -> ExperimentConfig:
    """The fully-resolved config of one E10 cell.

    ``base`` (optional) supplies algorithm/RTDS knobs; topology, workload
    shape and routing back end are overridden with the wide-network
    presets. ``routing_mode`` defaults to ``"oracle"`` — pass
    ``"protocol"`` to measure what the simulated setup used to cost.
    """
    topology, topology_kwargs = widenet_topology(kind, n)
    knobs = widenet_workload_defaults(n)
    cfg = base if base is not None else ExperimentConfig()
    return replace(
        cfg,
        topology=topology,
        topology_kwargs=topology_kwargs,
        routing_mode=routing_mode,
        seed=seed,
        label=f"{kind}-{n}",
        **knobs,
    )


def widenet_cells(
    kinds: Sequence[str],
    sizes: Sequence[int],
    seeds: Iterable[int],
    base: Optional[ExperimentConfig] = None,
    routing_mode: str = "oracle",
) -> List[Tuple[str, int, int, Cell]]:
    """The content-addressed cell matrix: ``(kind, n, seed, (key, config))``."""
    out = []
    for kind in kinds:
        for n in sizes:
            for seed in seeds:
                cfg = widenet_config(kind, n, seed=seed, base=base, routing_mode=routing_mode)
                out.append((kind, n, seed, (cell_key(cfg), cfg)))
    return out


def sweep_widenet(
    base: Optional[ExperimentConfig] = None,
    kinds: Sequence[str] = E10_KINDS,
    sizes: Sequence[int] = E10_SIZES,
    seeds: Iterable[int] = (0,),
    executor=None,
    store: Optional[CampaignStore] = None,
    resume: bool = True,
    progress: Optional[ProgressFn] = None,
    routing_mode: str = "oracle",
) -> List[Dict[str, Any]]:
    """E10: guarantee ratio and protocol cost across wide networks.

    Runs the full (kind, size, seed) matrix through
    :func:`~repro.experiments.parallel.run_cells` and aggregates each
    (kind, size) across seeds with Student-t 95% confidence intervals.
    Returns table rows for
    :func:`~repro.experiments.reporting.format_table`; raises
    :class:`~repro.errors.CampaignCellError` after recording failures.
    """
    seeds = list(seeds)
    matrix = widenet_cells(kinds, sizes, seeds, base=base, routing_mode=routing_mode)
    results = run_cells(
        [cell for _, _, _, cell in matrix],
        executor=executor,
        store=store,
        progress=progress,
        skip_completed=resume,
    )
    raise_on_failures(results)

    rows: List[Dict[str, Any]] = []
    for kind in kinds:
        for n in sizes:
            cell_results: List[CellResult] = [
                results[key]
                for k, sz, _, (key, _) in matrix
                if k == kind and sz == n
            ]
            grs = [r.metrics["guarantee_ratio"] for r in cell_results]
            msgs = [r.metrics["messages_per_job"] for r in cell_results]
            jobs = [r.metrics["n_jobs"] for r in cell_results]
            gr_mean, gr_ci = mean_confidence_interval(grs)
            rows.append(
                {
                    "topology": kind,
                    "sites": n,
                    "GR": f"{gr_mean:.4f}±{gr_ci:.3f}" if len(grs) > 1 else f"{gr_mean:.4f}",
                    "msg/job": round(float(np.mean(msgs)), 2),
                    "jobs": int(np.mean(jobs)),
                    "runs": len(cell_results),
                }
            )
    return rows
