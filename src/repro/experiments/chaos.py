"""E13 — the chaos soak: a resident service surviving churn and joins.

E12 (:mod:`repro.experiments.soak`) proved the admission service holds
its throughput, latency and memory contracts on a *static* network. E13
re-runs that open-loop campaign on a network that refuses to sit still:
the fault plan keeps sites churning (down/up windows with rejoin
handshakes) while new sites join mid-flight — each join repairing the
shared routing tables incrementally (:mod:`repro.membership.repair`) and
refreshing the affected scheduling spheres.

:func:`run_chaos` differs from the E12 driver in one deliberate way: it
submits through :meth:`~repro.service.admission.AdmissionService.submit_nowait`
— the *lossy* open-loop contract. When the queue is full or the degraded
breaker is open (windowed acceptance rate below ``degraded_floor``),
jobs are shed and counted instead of backpressuring the arrival process;
chaos must not be allowed to stall the clock that drives it.

The report adds the survivability ledger on top of the E12 scalars:
joins applied, rejoins observed, routing rows repaired, spheres
refreshed, site-down events, jobs dropped at dead origins — and the
final ``tables_converged`` bit, which re-derives every shared routing
table from scratch and compares bit-for-bit against the incrementally
repaired ones.

Determinism: like E12, everything simulated is a pure function of the
seeds; ``BENCH_e13.json`` gates it. CLI: ``rtds chaos``.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import pathlib
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigError
from repro.experiments.soak import SoakConfig
from repro.obs.telemetry import current_rss_mb
from repro.service.admission import AdmissionService
from repro.service.resident import ResidentSimulation
from repro.workloads.openloop import open_loop_jobs, open_loop_rate


@dataclass
class ChaosConfig:
    """Declarative description of one chaos soak."""

    n_sites: int = 32
    #: sites that join mid-run (drawn by the plan's JoinSpec)
    joins: int = 4
    #: links each joiner attaches with
    join_links: int = 3
    #: site-churn down/up windows over the run
    site_churn: int = 12
    mean_downtime: float = 40.0
    rho: float = 0.5
    arrival: str = "auto"
    target_jobs: int = 100_000
    queue_capacity: int = 1024
    laxity_factor: float = 3.0
    dag_size: str = "small"
    sample_every: int = 2_000
    hygiene_interval: float = 200.0
    drain_margin: float = 300.0
    #: admission breaker: shed submit_nowait below this acceptance rate
    degraded_floor: Optional[float] = 0.2
    degraded_window: int = 500
    #: window the plan draws churn/join times over; None = estimated from
    #: the arrival rate so chaos spans the whole run
    fault_horizon: Optional[float] = None
    seed: int = 0
    telemetry: bool = False

    def __post_init__(self) -> None:
        if self.joins < 0 or self.site_churn < 0:
            raise ConfigError("joins and site_churn must be >= 0")
        if self.joins == 0 and self.site_churn == 0:
            raise ConfigError(
                "a chaos soak needs chaos: set joins and/or site_churn "
                "(for the fault-free campaign use run_soak / rtds soak)"
            )
        self.soak_config()  # validate the composed spec before building

    def fault_spec(self) -> str:
        """The plan spec string the chaos knobs compose to."""
        parts = []
        if self.site_churn > 0:
            parts.append(f"sites={self.site_churn}")
            parts.append(f"downtime={self.mean_downtime:g}")
        if self.joins > 0:
            parts.append(f"joins={self.joins}")
            parts.append(f"join_links={self.join_links}")
        return ",".join(parts)

    def soak_config(self) -> SoakConfig:
        """The underlying E12 soak shape (oracle routing: joins repair
        the shared vectorized tables, so the protocol setup phase is
        replaced by precomputed-table installation)."""
        return SoakConfig(
            n_sites=self.n_sites,
            arrival=self.arrival,
            rho=self.rho,
            target_jobs=self.target_jobs,
            queue_capacity=self.queue_capacity,
            laxity_factor=self.laxity_factor,
            dag_size=self.dag_size,
            sample_every=self.sample_every,
            hygiene_interval=self.hygiene_interval,
            drain_margin=self.drain_margin,
            algorithm="rtds",
            routing_mode="oracle",
            seed=self.seed,
            telemetry=self.telemetry,
            faults=self.fault_spec(),
            fault_horizon=self.fault_horizon,
            degraded_floor=self.degraded_floor,
            degraded_window=self.degraded_window,
        )


@dataclass
class ChaosSample:
    """One point on the chaos trajectory (taken every ``sample_every``)."""

    jobs_decided: int
    wall_s: float
    sim_time: float
    jobs_per_sec: float
    guarantee_ratio: float
    lat_p50: float
    lat_p99: float
    queue_depth: int
    rss_mb: float
    live_records: int
    #: survivability ledger so far
    joins_applied: int
    rejoins: int
    repaired_rows: int
    site_down_events: int
    shed_total: int
    degraded: int


@dataclass
class ChaosReport:
    """Everything one chaos soak measured."""

    config: Dict[str, object]
    #: decisions observed (submitted minus shed)
    n_jobs: int
    submitted: int
    shed_queue_full: int
    shed_degraded: int
    degraded_entered: int
    wall_s: float
    jobs_per_sec: float
    sim_time: float
    guarantee_ratio: float
    effective_ratio: float
    lat_p50: float
    lat_p99: float
    lat_mean: float
    max_queue_depth: int
    rss_peak_mb: float
    rss_final_mb: float
    rss_growth_final80: float
    leaked_unfinished: int
    live_records_final: int
    folded_total: int
    #: membership ledger
    joins_applied: int
    rejoins: int
    links_added: int
    repaired_rows: int
    spheres_refreshed: int
    #: churn ledger
    site_down_events: int
    jobs_dropped: int
    #: gate-blocked executor records reaped by hygiene (lost results)
    abandoned_reaped: int
    #: 1 iff every repaired shared table equals a from-scratch rebuild
    tables_converged: int
    samples: List[ChaosSample] = field(default_factory=list)

    def scalar_metrics(self) -> Dict[str, float]:
        """Numeric fields only (the bench-gate surface)."""
        out = {}
        for k, v in asdict(self).items():
            if isinstance(v, (int, float)):
                out[k] = v
        return out

    def write_samples_jsonl(self, path: pathlib.Path) -> None:
        """One JSON object per sample — the nightly chaos CI artifact."""
        with open(path, "w") as fh:
            for s in self.samples:
                fh.write(json.dumps(asdict(s), sort_keys=True) + "\n")


def _estimate_horizon(config: ChaosConfig) -> float:
    """Simulated span the fault plan should cover, from the arrival rate.

    The chaos network is speed-homogeneous, so aggregate capacity is one
    unit per base site and the open-loop rate is known before building
    anything. A 10% margin keeps churn running through the drain's tail.
    """
    rate = open_loop_rate(
        config.rho, [1.0] * config.n_sites, dag_size=config.dag_size, seed=config.seed
    )
    return 1.1 * config.target_jobs / rate


def run_chaos(
    config: ChaosConfig,
    progress: Optional[Callable[[ChaosSample], None]] = None,
) -> ChaosReport:
    """Run one chaos soak to completion (synchronous wrapper)."""
    soak = config.soak_config()
    horizon = (
        config.fault_horizon if config.fault_horizon is not None
        else _estimate_horizon(config)
    )
    res = ResidentSimulation(soak.experiment_config(), fold=True, fault_horizon=horizon)
    spec = soak.open_loop_spec(res.capacities())
    svc = AdmissionService(
        res,
        queue_capacity=config.queue_capacity,
        hygiene_interval=config.hygiene_interval,
        degraded_floor=config.degraded_floor,
        degraded_window=config.degraded_window,
    )
    membership = res.resident.membership
    injector = res.resident.injector

    samples: List[ChaosSample] = []
    t0 = time.perf_counter()
    rss0 = current_rss_mb() or 0.0
    state = {"last_wall": 0.0, "last_decided": 0, "next_at": config.sample_every}

    def take_sample() -> ChaosSample:
        wall = time.perf_counter() - t0
        decided = svc.stats.decided
        dt = wall - state["last_wall"]
        rate = (decided - state["last_decided"]) / dt if dt > 0 else 0.0
        window = svc.latency.snapshot(qs=(50.0, 99.0))
        sample = ChaosSample(
            jobs_decided=decided,
            wall_s=wall,
            sim_time=res.now,
            jobs_per_sec=rate,
            guarantee_ratio=res.guarantee_ratio(),
            lat_p50=window.get("p50", float("nan")),
            lat_p99=window.get("p99", float("nan")),
            queue_depth=svc.queue_depth,
            rss_mb=current_rss_mb() or rss0,
            live_records=res.live_records(),
            joins_applied=membership.stats.joins_applied if membership else 0,
            rejoins=membership.stats.rejoins if membership else 0,
            repaired_rows=membership.stats.repaired_rows if membership else 0,
            site_down_events=injector.stats.site_down_events if injector else 0,
            shed_total=svc.stats.queue_full + svc.stats.shed_degraded,
            degraded=int(svc.degraded),
        )
        samples.append(sample)
        state["last_wall"] = wall
        state["last_decided"] = decided
        if progress is not None:
            progress(sample)
        return sample

    async def drive() -> None:
        async with svc:
            stream = itertools.islice(open_loop_jobs(spec), config.target_jobs)
            for i, job in enumerate(stream):
                # lossy open-loop: shed (counted) instead of backpressuring
                svc.submit_nowait(job)
                if svc.stats.decided >= state["next_at"]:
                    take_sample()
                    state["next_at"] = svc.stats.decided + config.sample_every
                if i % 64 == 63:
                    # yield so the pump drains; 64-job batches keep the
                    # queue shallow without a per-job context switch
                    await asyncio.sleep(0)

    asyncio.run(drive())
    final = take_sample()

    wall = final.wall_s
    peak = max(s.rss_mb for s in samples)
    cut = svc.stats.decided * 0.2
    early = [s for s in samples if s.jobs_decided >= cut]
    rss_at_20 = early[0].rss_mb if early else samples[0].rss_mb
    growth = max(0.0, final.rss_mb - rss_at_20)
    lat = svc.latency.percentiles(qs=(50.0, 99.0))
    metrics = res.resident.metrics
    mstats = membership.stats if membership else None

    return ChaosReport(
        config=asdict(config),
        n_jobs=svc.stats.decided,
        submitted=svc.stats.submitted,
        shed_queue_full=svc.stats.queue_full,
        shed_degraded=svc.stats.shed_degraded,
        degraded_entered=svc.stats.degraded_entered,
        wall_s=wall,
        jobs_per_sec=svc.stats.decided / wall if wall > 0 else 0.0,
        sim_time=res.now,
        guarantee_ratio=metrics.guarantee_ratio(),
        effective_ratio=metrics.effective_ratio(),
        lat_p50=lat["p50"],
        lat_p99=lat["p99"],
        lat_mean=svc.latency.mean,
        max_queue_depth=svc.stats.max_queue_depth,
        rss_peak_mb=peak,
        rss_final_mb=final.rss_mb,
        rss_growth_final80=growth / peak if peak > 0 else 0.0,
        leaked_unfinished=res.unfinished_plan_records(),
        live_records_final=res.live_records(),
        folded_total=metrics.n_folded,
        joins_applied=mstats.joins_applied if mstats else 0,
        rejoins=mstats.rejoins if mstats else 0,
        links_added=mstats.links_added if mstats else 0,
        repaired_rows=mstats.repaired_rows if mstats else 0,
        spheres_refreshed=mstats.spheres_refreshed if mstats else 0,
        site_down_events=injector.stats.site_down_events if injector else 0,
        jobs_dropped=injector.stats.jobs_dropped if injector else 0,
        abandoned_reaped=res.resident.abandoned_reaped,
        tables_converged=int(membership.verify_converged()) if membership else 1,
        samples=samples,
    )
