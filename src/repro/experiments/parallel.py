"""Parallel campaign runtime: content-addressed cells, executors, stores.

Every replicated claim in this reproduction is a *campaign*: a matrix of
(config, algorithm, seed, fault-plan) **cells**, each cell one call to
:func:`~repro.experiments.runner.run_experiment`. This module decouples
the three concerns that :class:`~repro.experiments.campaign.Campaign`
used to fuse:

* **identity** — :func:`cell_key` derives a content-addressed key from
  the fully-resolved :class:`~repro.experiments.runner.ExperimentConfig`
  (a SHA-256 over a canonical JSON fingerprint). Two configs that would
  run the same simulation hash identically, whatever produced them; the
  display-only ``label`` field is excluded.
* **execution** — an executor strategy runs cells: :class:`SerialExecutor`
  in-process (the default, zero overhead) or :class:`PoolExecutor` fanning
  cells across a ``multiprocessing`` worker pool. Both produce the same
  :class:`CellResult` records in the same order — determinism is per cell
  (everything derives from ``config.seed``), so serial and parallel runs
  are bit-for-bit identical per seed (asserted by
  ``benchmarks/bench_e8_scaling.py``).
* **persistence** — a :class:`ResultStore` directory holds one JSONL file
  per campaign (:class:`CampaignStore`). Records append as cells finish
  (flushed + fsynced, so a killed sweep loses at most the in-flight
  cells); on resume, completed cells are skipped by key and **failed
  cells are retried**. A torn trailing line from a hard kill is ignored
  on load; the last record per key wins.

:func:`run_cells` composes the three: skip what the store already has,
execute the rest, persist as results arrive, report progress. Failures
never abort the sweep mid-flight — :func:`run_cell` converts exceptions
into ``status="failed"`` records carrying the cell key, seed and error,
and :func:`raise_on_failures` raises one
:class:`~repro.errors.CampaignCellError` at the end naming every failed
cell. See DESIGN.md "Parallel runtime & result store".
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field, fields, is_dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import CampaignCellError, ConfigError
from repro.experiments.runner import ExperimentConfig, run_experiment

#: one unit of campaign work: ``(cell key, fully-resolved config)``
Cell = Tuple[str, ExperimentConfig]
#: progress callback: ``(finished result, cells done, cells total)``
ProgressFn = Callable[["CellResult", int, int], None]


# -- cell identity -----------------------------------------------------------


def _encode(value):
    """Canonical JSON-able encoding of one config value (recursive)."""
    if is_dataclass(value) and not isinstance(value, type):
        enc = {f.name: _encode(getattr(value, f.name)) for f in fields(value)}
        enc["__dataclass__"] = type(value).__name__
        return enc
    if isinstance(value, Mapping):
        if not all(isinstance(k, str) for k in value):
            raise ConfigError(
                "cannot fingerprint a mapping with non-string keys "
                f"({sorted(map(repr, value))}): str() coercion would let "
                "distinct configs collide on one cell key"
            )
        return {k: _encode(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
        return [_encode(v) for v in items]
    if isinstance(value, np.ndarray):
        return [_encode(v) for v in value.tolist()]
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        # integral floats normalize to int so duration=400 (Python) and
        # --duration 400 (argparse float) address the same cell; ints stay
        # exact, so values beyond 2**53 never collide
        return int(value) if value.is_integer() else value
    if callable(value):
        # Callables (e.g. custom dag factories) are fingerprinted by their
        # qualified name — their *code* is not hashed, so editing a factory
        # in place without renaming it keeps the old key. Documented
        # limitation; named factories are the supported campaign input.
        # Lambdas all share the name '<lambda>', so two different ones
        # would collide on one key — refuse them like any ambiguous value.
        mod = getattr(value, "__module__", "?")
        name = getattr(value, "__qualname__", getattr(value, "__name__", "?"))
        if "<lambda>" in name:
            raise ConfigError(
                "cannot fingerprint a lambda (every lambda shares the name "
                "'<lambda>', so distinct configs would collide on one cell "
                "key); use a named function"
            )
        return f"callable:{mod}.{name}"
    # A repr() fallback would silently break content addressing (default
    # reprs embed memory addresses; numpy reprs truncate) — refuse instead,
    # like PoolExecutor refuses unpicklable configs.
    raise ConfigError(
        f"cannot fingerprint config value of type {type(value).__name__!r} "
        f"({value!r}); cell keys need JSON-able, dataclass or named-callable values"
    )


def config_fingerprint(config: ExperimentConfig) -> Dict[str, object]:
    """The canonical JSON-able dict :func:`cell_key` hashes.

    Every behaviour-affecting field of the fully-resolved config is
    included; the display-only ``label`` is dropped so renaming a sweep
    column never invalidates its cached cells, and the observability-only
    ``telemetry`` flag is dropped so turning instrumentation on or off
    addresses the same cells (telemetry never changes results — the
    identity goldens and the telemetry differential test pin that). The
    ``admission_cache`` flag is dropped for the same reason: the plan
    cache is result-invisible by contract (cache-on ≡ cache-off bit for
    bit, the ``tests/cache/`` differential), so serial ≡ pool identity
    and cell addressing are untouched by it.

    The engine fields (``engine_mode``/``shards``) are popped only at
    their single-process defaults, so every pre-sharding cell key is
    unchanged; a sharded config keeps both — its determinism contract is
    conditional (partition-friendly cells only), so sharded cells are
    addressed honestly as their own coordinates.
    """
    enc = _encode(config)
    enc.pop("label", None)
    enc.pop("telemetry", None)
    enc.pop("admission_cache", None)
    if enc.get("engine_mode", "single") == "single":
        enc.pop("engine_mode", None)
        enc.pop("shards", None)
    return enc


def cell_key(config: ExperimentConfig) -> str:
    """Content-addressed cell key: SHA-256 of the canonical fingerprint.

    Stable across processes and interpreter restarts (the store's resume
    contract); 16 hex chars are kept — ample for campaign-sized matrices.
    """
    blob = json.dumps(config_fingerprint(config), sort_keys=True, allow_nan=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


# -- cell execution ----------------------------------------------------------


@dataclass(frozen=True, eq=True)
class CellResult:
    """The serializable outcome of one campaign cell.

    Carries every numeric summary metric
    (:meth:`~repro.experiments.runner.RunResult.scalar_metrics`) plus the
    flattened fault-damage counters — exactly what aggregation needs, and
    small enough to cross a process boundary or live in a JSONL store.
    """

    key: str
    algorithm: str
    seed: int
    label: str
    #: ``"ok"`` or ``"failed"``
    status: str
    metrics: Dict[str, float] = field(default_factory=dict)
    faults: Dict[str, int] = field(default_factory=dict)
    #: ``"ExcType: message"`` when status is ``"failed"``
    error: Optional[str] = None
    #: wall-clock seconds spent executing the cell
    elapsed: float = 0.0
    #: per-cell observability snapshot (events, events/sec, peak RSS MB)
    #: — collected unconditionally (it is harness-side sampling, not
    #: simulation telemetry) and kept apart from ``metrics`` so the
    #: serial-vs-pool identity contract (``same_metrics``) is untouched
    obs: Dict[str, float] = field(default_factory=dict)

    def __hash__(self):
        """Hash on the immutable identity fields (the dicts can't hash)."""
        return hash((self.key, self.algorithm, self.seed, self.status))

    @property
    def ok(self) -> bool:
        """True iff the cell ran to completion."""
        return self.status == "ok"

    def to_json(self) -> str:
        """One JSONL store line (Python's ``NaN`` extension allowed)."""
        return json.dumps(
            {
                "key": self.key,
                "algorithm": self.algorithm,
                "seed": self.seed,
                "label": self.label,
                "status": self.status,
                "metrics": self.metrics,
                "faults": self.faults,
                "error": self.error,
                "elapsed": self.elapsed,
                "obs": self.obs,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "CellResult":
        """Parse one store line back into a result."""
        raw = json.loads(line)
        return cls(
            key=raw["key"],
            algorithm=raw["algorithm"],
            seed=int(raw["seed"]),
            label=raw["label"],
            status=raw["status"],
            metrics=dict(raw.get("metrics") or {}),
            faults={k: int(v) for k, v in (raw.get("faults") or {}).items()},
            error=raw.get("error"),
            elapsed=float(raw.get("elapsed", 0.0)),
            # tolerant of pre-observability store lines (no "obs" field)
            obs={k: float(v) for k, v in (raw.get("obs") or {}).items()},
        )


def run_cell(config: ExperimentConfig, key: Optional[str] = None) -> CellResult:
    """Execute one cell; never raises on a failing *run*.

    An exception inside :func:`~repro.experiments.runner.run_experiment`
    becomes a ``status="failed"`` record naming the cell key and seed, so
    one broken replication cannot take down a whole sweep (the campaign
    layer raises :class:`~repro.errors.CampaignCellError` *after* every
    cell has had its chance and the failure is persisted).
    ``KeyboardInterrupt``/``SystemExit`` still propagate — a killed sweep
    should die, then resume.
    """
    from repro.metrics.faults import fault_report
    from repro.obs.telemetry import rss_mb

    key = key or cell_key(config)
    t0 = time.perf_counter()
    try:
        result = run_experiment(config)
        metrics = result.scalar_metrics()
        rep = fault_report(result)
        sim = result.network.sim
        obs_snapshot = {
            "events": float(sim.events_processed),
            "events_per_sec": (
                sim.events_processed / sim.wall_seconds if sim.wall_seconds > 0 else 0.0
            ),
        }
        rss = rss_mb()
        if rss is not None:
            obs_snapshot["rss_mb"] = rss
    except Exception as exc:
        return CellResult(
            key=key,
            algorithm=config.algorithm,
            seed=config.seed,
            label=config.resolved_label(),
            status="failed",
            error=f"{type(exc).__name__}: {exc}",
            elapsed=time.perf_counter() - t0,
        )
    return CellResult(
        key=key,
        algorithm=config.algorithm,
        seed=config.seed,
        label=config.resolved_label(),
        status="ok",
        metrics=metrics,
        faults={
            "lost_messages": rep.lost_messages,
            "jobs_dropped": rep.jobs_dropped,
            "retransmissions": rep.retransmissions,
            "degraded_phases": rep.degraded_phases,
            "lease_expirations": rep.lease_expirations,
            "link_down_events": rep.link_down_events,
            "site_down_events": rep.site_down_events,
        },
        elapsed=time.perf_counter() - t0,
        obs=obs_snapshot,
    )


# -- persistent result store -------------------------------------------------


class CampaignStore:
    """One campaign's append-only JSONL result file.

    Layout: one :class:`CellResult` per line, appended (flushed and
    fsynced) the moment the cell finishes. Readers take the **last**
    record per key, tolerate a torn trailing line (a hard kill mid-write)
    and treat only ``status == "ok"`` as completed — failed cells stay
    visible but are re-executed on resume.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def load(self) -> Dict[str, CellResult]:
        """All stored results, last record per key winning."""
        out: Dict[str, CellResult] = {}
        if not self.path.exists():
            return out
        with self.path.open("r", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    res = CellResult.from_json(line)
                except (ValueError, KeyError):
                    continue  # torn tail from a killed writer
                out[res.key] = res
        return out

    def completed_keys(self) -> set:
        """Keys whose latest record ran to completion (resume skips these)."""
        return {k for k, r in self.load().items() if r.ok}

    def failed(self) -> List[CellResult]:
        """Latest-record failures — the cells a resume will retry."""
        return [r for r in self.load().values() if not r.ok]

    def append(self, result: CellResult) -> None:
        """Durably append one result (crash loses at most in-flight cells).

        If the previous writer died mid-line, start on a fresh line first —
        otherwise the new record would glue onto the torn fragment and both
        would be lost to :meth:`load`.
        """
        needs_newline = False
        if self.path.exists() and self.path.stat().st_size > 0:
            with self.path.open("rb") as f:
                f.seek(-1, os.SEEK_END)
                needs_newline = f.read(1) != b"\n"
        with self.path.open("a", encoding="utf-8") as f:
            if needs_newline:
                f.write("\n")
            f.write(result.to_json() + "\n")
            f.flush()
            os.fsync(f.fileno())


class ResultStore:
    """A ``--store`` directory: one :class:`CampaignStore` JSONL per campaign.

    Cell keys are content-addressed, so sharing one file between unrelated
    campaigns is harmless — stale entries simply never match — but one
    file per campaign keeps the artifacts inspectable.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def campaign(self, name: str) -> CampaignStore:
        """The named campaign's JSONL store (``<root>/<name>.jsonl``)."""
        if not re.fullmatch(r"[\w.-]+", name):
            raise ConfigError(f"campaign store name must be a plain filename, got {name!r}")
        return CampaignStore(self.root / f"{name}.jsonl")

    def campaigns(self) -> List[str]:
        """Names of every campaign file present in the store directory."""
        return sorted(p.stem for p in self.root.glob("*.jsonl"))


# -- executor strategies -----------------------------------------------------


class SerialExecutor:
    """Runs cells one after another in the calling process (the default)."""

    jobs = 1

    def run(self, cells: Sequence[Cell], progress: Optional[ProgressFn] = None) -> List[CellResult]:
        """Execute ``cells`` in order; ``progress`` fires after each."""
        cells = list(cells)
        out: List[CellResult] = []
        for i, (key, cfg) in enumerate(cells):
            res = run_cell(cfg, key=key)
            out.append(res)
            if progress is not None:
                progress(res, i + 1, len(cells))
        return out


def _pool_entry(payload: Cell) -> CellResult:
    """Worker-side entry point (module-level so it pickles)."""
    key, cfg = payload
    return run_cell(cfg, key=key)


class PoolExecutor:
    """Fans cells across a ``multiprocessing`` worker pool.

    Results come back in submission order; the progress callback fires in
    *completion* order from the parent process (workers never touch the
    store). Configs must pickle — a config carrying a lambda
    ``dag_factory`` is rejected up front with a clear error instead of a
    worker traceback.
    """

    def __init__(self, jobs: int):
        if jobs < 2:
            raise ConfigError(f"PoolExecutor needs >= 2 jobs, got {jobs} (use SerialExecutor)")
        self.jobs = jobs

    def run(self, cells: Sequence[Cell], progress: Optional[ProgressFn] = None) -> List[CellResult]:
        """Execute ``cells`` across the pool; order of results is stable."""
        cells = list(cells)
        if not cells:
            return []
        try:
            pickle.dumps([cfg for _, cfg in cells])
        except Exception as exc:
            raise ConfigError(
                f"campaign cells must pickle to cross the worker-pool boundary ({exc}); "
                "use module-level functions for dag_factory, or the serial executor"
            ) from None
        results: List[Optional[CellResult]] = [None] * len(cells)
        done = 0
        with ProcessPoolExecutor(max_workers=min(self.jobs, len(cells))) as pool:
            futures = {pool.submit(_pool_entry, cell): i for i, cell in enumerate(cells)}
            for fut in as_completed(futures):
                res = fut.result()
                results[futures[fut]] = res
                done += 1
                if progress is not None:
                    progress(res, done, len(cells))
        return results  # type: ignore[return-value]


def make_executor(spec=None):
    """Resolve an executor strategy from a spec.

    Accepts ``None`` / ``"serial"`` / ``1`` (serial), an int ``n >= 2`` or
    the string ``"pool(n)"`` (a worker pool), or an existing executor
    instance (anything with a ``run`` method), which is passed through.
    """
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, (SerialExecutor, PoolExecutor)):
        return spec
    if not isinstance(spec, (str, int)) and hasattr(spec, "run"):
        return spec
    if isinstance(spec, bool):  # bools are ints; reject explicitly
        raise ConfigError(f"bad executor spec {spec!r}")
    if isinstance(spec, int):
        if spec < 1:
            raise ConfigError(f"executor job count must be >= 1, got {spec}")
        return SerialExecutor() if spec == 1 else PoolExecutor(spec)
    text = str(spec).strip().lower()
    if text == "serial":
        return SerialExecutor()
    match = re.fullmatch(r"pool\((\d+)\)", text)
    if match:
        return make_executor(int(match.group(1)))
    raise ConfigError(f"unknown executor spec {spec!r}; want 'serial', 'pool(n)' or an int")


# -- orchestration -----------------------------------------------------------


def run_cells(
    cells: Iterable[Cell],
    executor=None,
    store: Optional[CampaignStore] = None,
    progress: Optional[ProgressFn] = None,
    skip_completed: bool = True,
) -> Dict[str, CellResult]:
    """Execute a cell matrix through an executor, backed by a store.

    * duplicate keys collapse (content-addressing: identical configs run
      once);
    * with a ``store`` and ``skip_completed`` (the resume semantics),
      cells whose key already has an ``ok`` record are returned from the
      store without executing — failed records are re-executed;
    * every executed result is appended to the store *as it finishes*, so
      an interrupted sweep resumes from its last completed cell;
    * ``progress`` fires only for executed cells.

    Returns ``key -> CellResult`` covering every requested cell. Raising
    on failures is the caller's choice (:func:`raise_on_failures`).
    """
    executor = make_executor(executor)
    unique: Dict[str, ExperimentConfig] = {}
    for key, cfg in cells:
        unique.setdefault(key, cfg)

    results: Dict[str, CellResult] = {}
    pending: List[Cell] = []
    if store is not None and skip_completed:
        stored = store.load()
        for key, cfg in unique.items():
            hit = stored.get(key)
            if hit is not None and hit.ok:
                results[key] = hit
            else:
                pending.append((key, cfg))
    else:
        pending = list(unique.items())

    def _on_result(res: CellResult, done: int, total: int) -> None:
        if store is not None:
            store.append(res)
        if progress is not None:
            progress(res, done, total)

    for res in executor.run(pending, progress=_on_result):
        results[res.key] = res
    return results


def same_metrics(a: CellResult, b: CellResult) -> bool:
    """True iff two results carry identical metric values, NaN-aware.

    Plain dict equality is the wrong tool here: undefined metrics (e.g.
    ``mean_acs_size`` with no distributed acceptances) are NaN, and
    ``NaN != NaN``. Canonical JSON renders every NaN identically, giving
    the bit-for-bit comparison the serial-vs-parallel identity contract
    needs (``benchmarks/bench_e8_scaling.py``).
    """
    return json.dumps(a.metrics, sort_keys=True) == json.dumps(b.metrics, sort_keys=True)


def raise_on_failures(results: Mapping[str, CellResult]) -> None:
    """Raise :class:`~repro.errors.CampaignCellError` if any cell failed.

    Called after the whole matrix ran and every failure is persisted, so
    the error message ("rerun with resume to retry only the failed
    cells") is actionable.
    """
    failures = [r for r in results.values() if not r.ok]
    if failures:
        raise CampaignCellError(failures)
