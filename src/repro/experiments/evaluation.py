"""Sweep drivers for the implied evaluation (experiments E1–E5).

The paper reports no empirical tables; its §14 claims define the curves:

* E1 — guarantee ratio vs offered load, RTDS vs baselines;
* E2 — protocol messages per job vs network size (the "arbitrary wide
  networks" claim: RTDS flat, broadcast-based schemes growing);
* E3 — sphere radius ``h`` sweep (acceptance saturates, cost grows);
* E5 — §13 ablations (preemptive, laxity dispatching, local knowledge,
  uniform machines, ACS size bound).

Each driver returns plain dict-rows ready for
:func:`repro.experiments.reporting.format_table`; the benchmark files wrap
them with pytest-benchmark and print the tables.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Sequence

from repro.experiments.runner import ExperimentConfig, RunResult, run_experiment


def sweep_load(
    base: ExperimentConfig,
    algorithms: Sequence[str],
    rhos: Sequence[float],
    seeds: Sequence[int] = (0,),
) -> List[Dict[str, Any]]:
    """E1: guarantee ratio vs offered load per algorithm."""
    rows: List[Dict[str, Any]] = []
    for algo in algorithms:
        for rho in rhos:
            grs, effs, msgs = [], [], []
            for seed in seeds:
                cfg = replace(base, algorithm=algo, rho=rho, seed=seed, label=algo)
                res = run_experiment(cfg)
                grs.append(res.summary.guarantee_ratio)
                effs.append(res.summary.effective_ratio)
                msgs.append(res.summary.messages_per_job)
            n = len(seeds)
            rows.append(
                {
                    "algorithm": algo,
                    "rho": rho,
                    "GR": sum(grs) / n,
                    "effGR": sum(effs) / n,
                    "msg/job": sum(msgs) / n,
                    "runs": n,
                }
            )
    return rows


def sweep_network_size(
    base: ExperimentConfig,
    algorithms: Sequence[str],
    sizes: Sequence[int],
    topology: str = "erdos_renyi",
    degree: float = 4.0,
) -> List[Dict[str, Any]]:
    """E2: per-job message cost vs network size (constant mean degree)."""
    rows: List[Dict[str, Any]] = []
    for algo in algorithms:
        for n in sizes:
            p = min(1.0, degree / max(1, n - 1))
            kwargs = {"n": n, "p": p}
            if "delay_range" in base.topology_kwargs:
                kwargs["delay_range"] = base.topology_kwargs["delay_range"]
            cfg = replace(
                base,
                algorithm=algo,
                topology=topology,
                topology_kwargs=kwargs,
                label=algo,
            )
            res = run_experiment(cfg)
            rows.append(
                {
                    "algorithm": algo,
                    "sites": n,
                    "msg/job": res.summary.messages_per_job,
                    "setup_msg": res.summary.setup_messages,
                    "GR": res.summary.guarantee_ratio,
                    "jobs": res.summary.n_jobs,
                }
            )
    return rows


def sweep_sphere_radius(
    base: ExperimentConfig,
    hs: Sequence[int],
) -> List[Dict[str, Any]]:
    """E3: effect of the PCS hop radius h."""
    rows: List[Dict[str, Any]] = []
    for h in hs:
        cfg = replace(base, algorithm="rtds", rtds=replace(base.rtds, h=h), label=f"h={h}")
        res = run_experiment(cfg)
        mean_pcs = _mean_pcs_size(res)
        rows.append(
            {
                "h": h,
                "GR": res.summary.guarantee_ratio,
                "effGR": res.summary.effective_ratio,
                "msg/job": res.summary.messages_per_job,
                "setup_msg": res.summary.setup_messages,
                "mean_PCS": mean_pcs,
                "mean_ACS": res.summary.mean_acs_size,
            }
        )
    return rows


def _mean_pcs_size(res: RunResult) -> float:
    sizes = [
        len(site.pcs)
        for site in res.network.sites.values()
        if getattr(site, "pcs", None) is not None
    ]
    return sum(sizes) / len(sizes) if sizes else float("nan")


def sweep_ablations(base: ExperimentConfig) -> List[Dict[str, Any]]:
    """E5: the §13 generalizations, one row per variant vs the default."""
    variants: List[tuple] = [
        ("base", base.rtds),
        ("preemptive", replace(base.rtds, validation_preemptive=True)),
        ("laxity=busyness", replace(base.rtds, laxity_mode="busyness")),
        ("local_knowledge", replace(base.rtds, local_knowledge=True)),
        ("acs<=4", replace(base.rtds, max_acs_size=4)),
        ("queue_mode", replace(base.rtds, enroll_mode="queue")),
        ("validation=llf", replace(base.rtds, validation_order="llf")),
    ]
    rows: List[Dict[str, Any]] = []
    for name, rtds_cfg in variants:
        cfg = replace(base, algorithm="rtds", rtds=rtds_cfg, label=name)
        res = run_experiment(cfg)
        rows.append(
            {
                "variant": name,
                "GR": res.summary.guarantee_ratio,
                "effGR": res.summary.effective_ratio,
                "msg/job": res.summary.messages_per_job,
                "miss": res.summary.n_missed,
                "dist": res.summary.n_accepted_distributed,
            }
        )
    return rows


def sweep_uniform_machines(
    base: ExperimentConfig, speed_sets: Dict[str, List[float]]
) -> List[Dict[str, Any]]:
    """E5b: heterogeneous computing powers (§13 uniform machines)."""
    rows: List[Dict[str, Any]] = []
    for name, speeds in speed_sets.items():
        cfg = replace(base, algorithm="rtds", site_speeds=list(speeds), label=name)
        res = run_experiment(cfg)
        rows.append(
            {
                "speeds": name,
                "GR": res.summary.guarantee_ratio,
                "effGR": res.summary.effective_ratio,
                "miss": res.summary.n_missed,
            }
        )
    return rows
