"""Replicated experiment campaigns.

One simulation run is one sample; claims need replications. A
:class:`Campaign` runs a configuration across seeds, aggregates every
summary metric with Student-t confidence intervals, and compares
algorithms pairwise (difference of guarantee ratios with its own CI via
per-seed pairing — the right analysis for matched workloads, since all
algorithms see the *same* arrivals for a given seed).

Used by the E1 bench's CI variant and available to users:

    camp = Campaign(base_config, seeds=range(8))
    agg = camp.run("rtds")
    print(agg.mean["GR"], "+/-", agg.ci["GR"])
    diff = camp.compare("rtds", "local")     # paired per-seed differences

Fault sweeps (:func:`sweep_fault_plans`) replicate one configuration across
seeds for each :class:`~repro.faults.plan.FaultPlan` in a list — the E7
guarantee-vs-loss-rate curve — aggregating both the scheduler metrics and
the churn damage counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.experiments.runner import ExperimentConfig, RunResult, run_experiment
from repro.metrics.stats import mean_confidence_interval

#: summary attributes aggregated per campaign
_METRICS = (
    ("GR", "guarantee_ratio"),
    ("effGR", "effective_ratio"),
    ("msg/job", "messages_per_job"),
    ("latency", "mean_decision_latency"),
    ("miss", "n_missed"),
    ("dist", "n_accepted_distributed"),
)


@dataclass
class Aggregate:
    """Mean ± 95% CI of each metric across replications."""

    label: str
    n_runs: int
    mean: Dict[str, float]
    ci: Dict[str, float]
    per_seed: Dict[str, List[float]] = field(repr=False, default_factory=dict)

    def row(self) -> Dict[str, object]:
        out: Dict[str, object] = {"label": self.label, "runs": self.n_runs}
        for key in self.mean:
            out[key] = f"{self.mean[key]:.4g}±{self.ci[key]:.2g}"
        return out


@dataclass
class PairedComparison:
    """Per-seed paired difference of one metric between two algorithms."""

    metric: str
    a: str
    b: str
    mean_diff: float
    ci: float
    n: int

    @property
    def significant(self) -> bool:
        """True iff the 95% CI of the paired difference excludes zero."""
        return abs(self.mean_diff) > self.ci

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        star = " (*)" if self.significant else ""
        return (
            f"{self.metric}: {self.a} - {self.b} = "
            f"{self.mean_diff:+.4f} ± {self.ci:.4f}{star}"
        )


class Campaign:
    """Runs one base configuration across seeds and algorithms."""

    def __init__(self, base: ExperimentConfig, seeds: Iterable[int]):
        self.base = base
        self.seeds = list(seeds)
        if not self.seeds:
            raise ConfigError("campaign needs at least one seed")
        self._cache: Dict[tuple, RunResult] = {}

    def _run(self, algorithm: str, seed: int) -> RunResult:
        key = (algorithm, seed)
        if key not in self._cache:
            cfg = replace(self.base, algorithm=algorithm, seed=seed, label=algorithm)
            self._cache[key] = run_experiment(cfg)
        return self._cache[key]

    def run(self, algorithm: str) -> Aggregate:
        """All replications of one algorithm, aggregated."""
        per_seed: Dict[str, List[float]] = {k: [] for k, _ in _METRICS}
        for seed in self.seeds:
            s = self._run(algorithm, seed).summary
            for key, attr in _METRICS:
                per_seed[key].append(float(getattr(s, attr)))
        mean: Dict[str, float] = {}
        ci: Dict[str, float] = {}
        for key, vals in per_seed.items():
            clean = [v for v in vals if not np.isnan(v)]
            m, h = mean_confidence_interval(clean) if clean else (float("nan"), 0.0)
            mean[key], ci[key] = m, h
        return Aggregate(
            label=algorithm, n_runs=len(self.seeds), mean=mean, ci=ci, per_seed=per_seed
        )

    def compare(
        self, a: str, b: str, metric: str = "GR"
    ) -> PairedComparison:
        """Paired per-seed difference ``a - b`` of one metric."""
        keys = {k for k, _ in _METRICS}
        if metric not in keys:
            raise ConfigError(f"unknown metric {metric!r}; known: {sorted(keys)}")
        attr = dict(_METRICS)[metric]
        diffs = []
        for seed in self.seeds:
            va = float(getattr(self._run(a, seed).summary, attr))
            vb = float(getattr(self._run(b, seed).summary, attr))
            if not (np.isnan(va) or np.isnan(vb)):
                diffs.append(va - vb)
        m, h = mean_confidence_interval(diffs)
        return PairedComparison(metric=metric, a=a, b=b, mean_diff=m, ci=h, n=len(diffs))

    def table(self, algorithms: Sequence[str]) -> List[Dict[str, object]]:
        """One aggregate row per algorithm (for ``format_table``)."""
        return [self.run(a).row() for a in algorithms]


def sweep_fault_plans(
    base: ExperimentConfig,
    plans: Sequence[tuple],
    seeds: Iterable[int] = (0,),
) -> List[Dict[str, object]]:
    """Replicate ``base`` across seeds for each ``(label, FaultPlan)``.

    Returns one row per plan with mean ± 95% CI of guarantee/effective
    ratios plus the summed churn damage (lost messages, degraded phases,
    dropped jobs) — the E7 fault-sweep table. ``base`` must already carry a
    hardened RTDS config when any plan is nonzero.
    """
    from repro.metrics.faults import fault_report

    seeds = list(seeds)
    if not seeds:
        raise ConfigError("fault sweep needs at least one seed")
    rows: List[Dict[str, object]] = []
    for label, plan in plans:
        grs, effs = [], []
        lost = degraded = dropped = retransmits = 0
        for seed in seeds:
            cfg = replace(base, faults=plan, seed=seed, label=str(label))
            res = run_experiment(cfg)
            rep = fault_report(res)
            grs.append(rep.guarantee_ratio)
            effs.append(rep.effective_ratio)
            lost += rep.lost_messages
            degraded += rep.degraded_phases
            dropped += rep.jobs_dropped
            retransmits += rep.retransmissions
        gr_m, gr_h = mean_confidence_interval(grs)
        eff_m, eff_h = mean_confidence_interval(effs)
        rows.append(
            {
                "plan": str(label),
                "runs": len(seeds),
                "GR": round(gr_m, 4),
                "GR±": round(gr_h, 4),
                "effGR": round(eff_m, 4),
                "effGR±": round(eff_h, 4),
                "lost": lost,
                "retransmit": retransmits,
                "degraded": degraded,
                "jobs_dropped": dropped,
            }
        )
    return rows
