"""Replicated experiment campaigns.

One simulation run is one sample; claims need replications. A
:class:`Campaign` runs a configuration across seeds, aggregates every
summary metric with Student-t confidence intervals, and compares
algorithms pairwise (difference of guarantee ratios with its own CI via
per-seed pairing — the right analysis for matched workloads, since all
algorithms see the *same* arrivals for a given seed).

Execution is delegated to :mod:`repro.experiments.parallel`: a campaign's
(algorithm, seed) matrix is a list of content-addressed *cells* handed to
an executor strategy (``serial`` by default, or a ``pool(n)`` worker
pool), optionally backed by a persistent
:class:`~repro.experiments.parallel.CampaignStore` so interrupted
campaigns resume by skipping completed cells. Aggregation here only ever
touches the serializable
:class:`~repro.experiments.parallel.CellResult` records.

Used by the E1 bench's CI variant, the ``rtds campaign`` CLI command, and
available to users:

    camp = Campaign(base_config, seeds=range(8), executor="pool(4)")
    agg = camp.run("rtds")
    print(agg.mean["GR"], "+/-", agg.ci["GR"])
    diff = camp.compare("rtds", "local")     # paired per-seed differences

A single failing replication no longer aborts the sweep with a bare
traceback: every cell runs, failures are recorded (in the store when one
is attached), and one :class:`~repro.errors.CampaignCellError` naming
each failed cell key and seed is raised at the end — a resumed run
retries only those cells.

Fault sweeps (:func:`sweep_fault_plans`) replicate one configuration across
seeds for each :class:`~repro.faults.plan.FaultPlan` in a list — the E7
guarantee-vs-loss-rate curve — aggregating both the scheduler metrics and
the churn damage counters, through the same executor/store machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.experiments.parallel import (
    CampaignStore,
    Cell,
    CellResult,
    ProgressFn,
    cell_key,
    make_executor,
    raise_on_failures,
    run_cells,
)
from repro.experiments.runner import ExperimentConfig
from repro.metrics.stats import mean_confidence_interval

#: summary attributes aggregated per campaign: display key -> metric name
_METRICS = (
    ("GR", "guarantee_ratio"),
    ("effGR", "effective_ratio"),
    ("msg/job", "messages_per_job"),
    ("latency", "mean_decision_latency"),
    ("miss", "n_missed"),
    ("dist", "n_accepted_distributed"),
)


@dataclass
class Aggregate:
    """Mean ± 95% CI of each metric across replications."""

    label: str
    n_runs: int
    mean: Dict[str, float]
    ci: Dict[str, float]
    per_seed: Dict[str, List[float]] = field(repr=False, default_factory=dict)

    def row(self) -> Dict[str, object]:
        """Flat ``mean±ci`` dict for :func:`~repro.experiments.reporting.format_table`."""
        out: Dict[str, object] = {"label": self.label, "runs": self.n_runs}
        for key in self.mean:
            out[key] = f"{self.mean[key]:.4g}±{self.ci[key]:.2g}"
        return out


@dataclass
class PairedComparison:
    """Per-seed paired difference of one metric between two algorithms."""

    metric: str
    a: str
    b: str
    mean_diff: float
    ci: float
    n: int

    @property
    def significant(self) -> bool:
        """True iff the 95% CI of the paired difference excludes zero."""
        return abs(self.mean_diff) > self.ci

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        star = " (*)" if self.significant else ""
        return (
            f"{self.metric}: {self.a} - {self.b} = "
            f"{self.mean_diff:+.4f} ± {self.ci:.4f}{star}"
        )


class Campaign:
    """Runs one base configuration across seeds and algorithms.

    ``executor`` is anything :func:`~repro.experiments.parallel.make_executor`
    accepts (``None``/``"serial"``/``"pool(4)"``/an int/an instance);
    ``store`` persists per-cell results and, with ``resume`` (default),
    skips cells it already completed; ``progress`` fires per executed cell.
    """

    def __init__(
        self,
        base: ExperimentConfig,
        seeds: Iterable[int],
        executor=None,
        store: Optional[CampaignStore] = None,
        resume: bool = True,
        progress: Optional[ProgressFn] = None,
    ):
        self.base = base
        self.seeds = list(seeds)
        if not self.seeds:
            raise ConfigError("campaign needs at least one seed")
        self.executor = make_executor(executor)
        self.store = store
        self.resume = resume
        self.progress = progress
        self._cache: Dict[tuple, CellResult] = {}

    def cell_config(self, algorithm: str, seed: int) -> ExperimentConfig:
        """The fully-resolved config of one (algorithm, seed) cell."""
        return replace(self.base, algorithm=algorithm, seed=seed, label=algorithm)

    def prefetch(self, algorithms: Sequence[str]) -> None:
        """Execute every missing (algorithm, seed) cell in one executor pass.

        Fanning the *whole* matrix at once is what lets a worker pool keep
        every core busy; ``run``/``compare``/``table`` all route through
        here, so calling them directly is never slower — just less batched.
        Raises :class:`~repro.errors.CampaignCellError` (after recording
        every failure) if any cell failed; successful cells stay cached.
        """
        todo = [
            (algo, seed)
            for algo in algorithms
            for seed in self.seeds
            if (algo, seed) not in self._cache
        ]
        if not todo:
            return
        cells: List[Cell] = []
        for algo, seed in todo:
            cfg = self.cell_config(algo, seed)
            cells.append((cell_key(cfg), cfg))
        results = run_cells(
            cells,
            executor=self.executor,
            store=self.store,
            progress=self.progress,
            skip_completed=self.resume,
        )
        for (algo, seed), (key, _) in zip(todo, cells):
            if results[key].ok:  # failures are retried on the next call
                self._cache[(algo, seed)] = results[key]
        raise_on_failures(results)

    def _metric(self, algorithm: str, seed: int, attr: str) -> float:
        return float(self._cache[(algorithm, seed)].metrics[attr])

    def run(self, algorithm: str) -> Aggregate:
        """All replications of one algorithm, aggregated."""
        self.prefetch([algorithm])
        per_seed: Dict[str, List[float]] = {
            key: [self._metric(algorithm, seed, attr) for seed in self.seeds]
            for key, attr in _METRICS
        }
        mean: Dict[str, float] = {}
        ci: Dict[str, float] = {}
        for key, vals in per_seed.items():
            clean = [v for v in vals if not np.isnan(v)]
            m, h = mean_confidence_interval(clean) if clean else (float("nan"), 0.0)
            mean[key], ci[key] = m, h
        return Aggregate(
            label=algorithm, n_runs=len(self.seeds), mean=mean, ci=ci, per_seed=per_seed
        )

    def compare(
        self, a: str, b: str, metric: str = "GR"
    ) -> PairedComparison:
        """Paired per-seed difference ``a - b`` of one metric."""
        keys = {k for k, _ in _METRICS}
        if metric not in keys:
            raise ConfigError(f"unknown metric {metric!r}; known: {sorted(keys)}")
        attr = dict(_METRICS)[metric]
        self.prefetch([a, b])
        diffs = []
        for seed in self.seeds:
            va = self._metric(a, seed, attr)
            vb = self._metric(b, seed, attr)
            if not (np.isnan(va) or np.isnan(vb)):
                diffs.append(va - vb)
        m, h = mean_confidence_interval(diffs)
        return PairedComparison(metric=metric, a=a, b=b, mean_diff=m, ci=h, n=len(diffs))

    def table(self, algorithms: Sequence[str]) -> List[Dict[str, object]]:
        """One aggregate row per algorithm (for ``format_table``).

        Prefetches the full algorithms × seeds matrix in one executor
        pass, so with a pool executor the whole table parallelizes.
        """
        self.prefetch(list(algorithms))
        return [self.run(a).row() for a in algorithms]


def sweep_fault_plans(
    base: ExperimentConfig,
    plans: Sequence[tuple],
    seeds: Iterable[int] = (0,),
    executor=None,
    store: Optional[CampaignStore] = None,
    resume: bool = True,
    progress: Optional[ProgressFn] = None,
) -> List[Dict[str, object]]:
    """Replicate ``base`` across seeds for each ``(label, FaultPlan)``.

    Returns one row per plan with mean ± 95% CI of guarantee/effective
    ratios plus the summed churn damage (lost messages, degraded phases,
    dropped jobs) — the E7 fault-sweep table. ``base`` must already carry a
    hardened RTDS config when any plan is nonzero.

    The full plans × seeds matrix goes through one
    :func:`~repro.experiments.parallel.run_cells` pass, so it accepts the
    same ``executor``/``store``/``resume``/``progress`` knobs as
    :class:`Campaign` and resumes interrupted sweeps the same way.
    """
    seeds = list(seeds)
    if not seeds:
        raise ConfigError("fault sweep needs at least one seed")
    cells: List[Cell] = []
    plan_keys: List[Tuple[str, List[str]]] = []
    for label, plan in plans:
        keys: List[str] = []
        for seed in seeds:
            cfg = replace(base, faults=plan, seed=seed, label=str(label))
            key = cell_key(cfg)
            keys.append(key)
            cells.append((key, cfg))
        plan_keys.append((str(label), keys))

    results = run_cells(
        cells, executor=executor, store=store, progress=progress, skip_completed=resume
    )
    raise_on_failures(results)

    rows: List[Dict[str, object]] = []
    for label, keys in plan_keys:
        cell_results = [results[k] for k in keys]
        grs = [r.metrics["guarantee_ratio"] for r in cell_results]
        effs = [r.metrics["effective_ratio"] for r in cell_results]
        gr_m, gr_h = mean_confidence_interval(grs)
        eff_m, eff_h = mean_confidence_interval(effs)
        rows.append(
            {
                "plan": label,
                "runs": len(seeds),
                "GR": round(gr_m, 4),
                "GR±": round(gr_h, 4),
                "effGR": round(eff_m, 4),
                "effGR±": round(eff_h, 4),
                "lost": sum(r.faults["lost_messages"] for r in cell_results),
                "retransmit": sum(r.faults["retransmissions"] for r in cell_results),
                "degraded": sum(r.faults["degraded_phases"] for r in cell_results),
                "jobs_dropped": sum(r.faults["jobs_dropped"] for r in cell_results),
            }
        )
    return rows
