"""E11 — heterogeneous sites × trace-driven workflow workloads.

The paper's base protocol assumes identical sites; §13 sketches the
*related machines* relaxation (communication-aware scheduling on related
machines — Su et al., arXiv:2004.14639 — is the modern statement of the
same problem). E11 measures what speed *imbalance* does to the guarantee
ratio when total capacity is held constant: every cell is one seeded run
on the same topology family, crossed over

* a **speed profile** from :mod:`repro.simnet.speeds` — ``"uniform"``
  (the homogeneous anchor, site_speeds left unset so the run takes the
  byte-identical default path) and ``"skew:K"`` levels whose fast/slow
  ratio grows while the mean speed stays 1.0; and
* a **workload family** — the synthetic ``dag_size`` mix and the
  trace-driven workflow streams of :mod:`repro.workloads.traces`
  (Montage / Epigenomics shapes with empirical per-task-type runtimes).

Because the profiles are mean-normalised, offered load ρ means the same
thing in every cell; the GR spread across a row is the pure cost (or
benefit) of heterogeneity for that workload shape. The trace rows show
whether workflow-shaped jobs — long lanes, heavy co-add sinks — shift
the protocol's behaviour off the synthetic mixes it was tuned on.

:func:`sweep_hetero` fans the (profile, workload, seed) matrix through
the parallel campaign runtime, so ``rtds sweep-hetero --jobs N --store
DIR --resume`` scales across cores and survives interruption like every
other campaign. ``benchmarks/bench_e11_hetero.py`` adds the committed
GR-drift gate (``BENCH_e11.json``) and the uniform-vs-default
differential check.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.experiments.parallel import (
    CampaignStore,
    Cell,
    CellResult,
    ProgressFn,
    cell_key,
    raise_on_failures,
    run_cells,
)
from repro.experiments.runner import ExperimentConfig
from repro.metrics.stats import mean_confidence_interval

#: the E11 speed-profile axis: homogeneous anchor + growing skew
E11_SPEEDS: Tuple[str, ...] = ("uniform", "skew:2", "skew:4")
#: the E11 workload axis: the synthetic mix + the workflow traces
E11_WORKLOADS: Tuple[str, ...] = ("synthetic", "trace:montage", "trace:epigenomics")

#: default network size of the E11 cells: small enough that the full
#: default matrix (3 profiles × 3 workloads) runs in seconds, large
#: enough to push a meaningful share of jobs through the distributed
#: protocol.
E11_SITES = 24
#: target mean degree of the E11 Erdős–Rényi cells (p = degree/(n-1), so
#: sphere sizes stay comparable when ``--sites`` scales the network)
E11_MEAN_DEGREE = 4.6

#: workload knobs of the E11 cells, applied only when no ``base`` config
#: is given (the CLI's ``--rho/--duration/--laxity`` flags flow through
#: ``base`` and win; ``rtds sweep-hetero`` pins its own defaults to these
#: values, so the flag-less CLI run and the bench address the same cells)
E11_WORKLOAD: Dict[str, Any] = {
    "rho": 0.6,
    "duration": 240.0,
    "laxity_factor": 3.0,
}


def hetero_topology(n: int) -> Tuple[str, Dict[str, Any]]:
    """``(topology, topology_kwargs)`` of one E11 cell at ``n`` sites."""
    if n < 4:
        raise ConfigError(f"hetero cells start at 4 sites, got {n}")
    return "erdos_renyi", {
        "n": n,
        "p": min(1.0, E11_MEAN_DEGREE / (n - 1)),
        "delay_range": (0.2, 1.0),
    }


def hetero_config(
    speed_spec: str,
    workload: str,
    seed: int = 0,
    base: Optional[ExperimentConfig] = None,
    n_sites: int = E11_SITES,
) -> ExperimentConfig:
    """The fully-resolved config of one E11 cell.

    ``speed_spec`` is a profile name from :mod:`repro.simnet.speeds` or
    the literal ``"uniform"``, which maps to ``site_speeds=None`` — the
    homogeneous anchor runs the exact default code path the identity
    goldens pin, so the uniform row doubles as a continuous differential
    check. ``base`` (optional) supplies algorithm/RTDS *and* workload
    knobs (rho, duration, laxity — the CLI's common flags land here);
    without one, :data:`E11_WORKLOAD` applies. Topology always comes
    from :func:`hetero_topology` at ``n_sites`` — the cell axes own the
    network, like every other campaign module.
    """
    topology, topology_kwargs = hetero_topology(n_sites)
    cfg = base if base is not None else ExperimentConfig(**E11_WORKLOAD)
    site_speeds = None if speed_spec == "uniform" else speed_spec
    return replace(
        cfg,
        topology=topology,
        topology_kwargs=topology_kwargs,
        site_speeds=site_speeds,
        workload=workload,
        seed=seed,
        label=f"{speed_spec}|{workload}",
    )


def hetero_cells(
    speed_specs: Sequence[str],
    workloads: Sequence[str],
    seeds: Iterable[int],
    base: Optional[ExperimentConfig] = None,
    n_sites: int = E11_SITES,
) -> List[Tuple[str, str, int, Cell]]:
    """The content-addressed cell matrix: ``(profile, workload, seed, (key, config))``."""
    out = []
    for spec in speed_specs:
        for workload in workloads:
            for seed in seeds:
                cfg = hetero_config(spec, workload, seed=seed, base=base, n_sites=n_sites)
                out.append((spec, workload, seed, (cell_key(cfg), cfg)))
    return out


def sweep_hetero(
    base: Optional[ExperimentConfig] = None,
    speed_specs: Sequence[str] = E11_SPEEDS,
    workloads: Sequence[str] = E11_WORKLOADS,
    seeds: Iterable[int] = (0,),
    executor=None,
    store: Optional[CampaignStore] = None,
    resume: bool = True,
    progress: Optional[ProgressFn] = None,
    n_sites: int = E11_SITES,
) -> List[Dict[str, Any]]:
    """E11: guarantee ratio across speed-skew levels and workload families.

    Runs the full (profile, workload, seed) matrix through
    :func:`~repro.experiments.parallel.run_cells` and aggregates each
    (profile, workload) across seeds with Student-t 95% confidence
    intervals. Returns table rows for
    :func:`~repro.experiments.reporting.format_table`; raises
    :class:`~repro.errors.CampaignCellError` after recording failures.
    """
    seeds = list(seeds)
    matrix = hetero_cells(speed_specs, workloads, seeds, base=base, n_sites=n_sites)
    results = run_cells(
        [cell for _, _, _, cell in matrix],
        executor=executor,
        store=store,
        progress=progress,
        skip_completed=resume,
    )
    raise_on_failures(results)

    rows: List[Dict[str, Any]] = []
    for spec in speed_specs:
        for workload in workloads:
            cell_results: List[CellResult] = [
                results[key]
                for sp, wl, _, (key, _) in matrix
                if sp == spec and wl == workload
            ]
            grs = [r.metrics["guarantee_ratio"] for r in cell_results]
            effs = [r.metrics["effective_ratio"] for r in cell_results]
            jobs = [r.metrics["n_jobs"] for r in cell_results]
            gr_mean, gr_ci = mean_confidence_interval(grs)
            rows.append(
                {
                    "speeds": spec,
                    "workload": workload,
                    "GR": f"{gr_mean:.4f}±{gr_ci:.3f}" if len(grs) > 1 else f"{gr_mean:.4f}",
                    "effGR": round(float(np.mean(effs)), 4),
                    "jobs": int(np.mean(jobs)),
                    "runs": len(cell_results),
                }
            )
    return rows
