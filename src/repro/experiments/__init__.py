"""Experiment harness.

* :mod:`repro.experiments.runner` — one entry point
  (:func:`run_experiment`) that builds topology + sites + workload from a
  declarative :class:`ExperimentConfig`, runs the simulation in two phases
  (setup/routing, then workload) and returns summaries;
* :mod:`repro.experiments.parallel` — the campaign runtime:
  content-addressed cell keys, serial/pool executor strategies, and the
  resumable on-disk JSONL result store;
* :mod:`repro.experiments.campaign` — replications, confidence intervals
  and paired comparisons (:class:`Campaign`), and the E7 fault sweep
  (:func:`sweep_fault_plans`), both running through the parallel runtime;
* :mod:`repro.experiments.paper_example` — exact regeneration of the
  paper's worked example (Figs 2–4, Table 1) and a Figure-1-style protocol
  trace;
* :mod:`repro.experiments.evaluation` — the E1–E5 sweep drivers used by
  the benchmark files;
* :mod:`repro.experiments.widenet` — the E10 wide-network scale-out
  campaign (256-1024+ sites over geometric and scale-free topologies,
  oracle routing back end);
* :mod:`repro.experiments.hetero` — the E11 heterogeneity campaign
  (per-site speed profiles × trace-driven workflow workloads);
* :mod:`repro.experiments.soak` — the E12 long-lived admission soak:
  an open-loop stream through one resident network via the admission
  service (:mod:`repro.service`), with throughput / interval-latency /
  memory-flatness trajectory sampling;
* :mod:`repro.experiments.reporting` — plain-text tables.
"""

from repro.experiments.campaign import (
    Aggregate,
    Campaign,
    PairedComparison,
    sweep_fault_plans,
)
from repro.experiments.parallel import (
    CampaignStore,
    CellResult,
    PoolExecutor,
    ResultStore,
    SerialExecutor,
    cell_key,
    make_executor,
    run_cell,
    run_cells,
)
from repro.experiments.runner import (
    ExperimentConfig,
    ResidentNetwork,
    RunResult,
    build_resident,
    run_experiment,
    run_experiment_with_workload,
)
from repro.experiments.soak import SoakConfig, SoakReport, SoakSample, run_soak
from repro.experiments.verify import assert_sound, verify_execution
from repro.experiments.paper_example import (
    PAPER_DEADLINE,
    PAPER_OMEGA,
    PAPER_SURPLUSES,
    paper_example_adjusted,
    paper_example_trial_mapping,
    run_fig1_scenario,
    table1_rows,
)
from repro.experiments.reporting import format_table
from repro.experiments.widenet import (
    E10_KINDS,
    E10_SIZES,
    sweep_widenet,
    widenet_config,
)
from repro.experiments.hetero import (
    E11_SPEEDS,
    E11_WORKLOADS,
    hetero_config,
    sweep_hetero,
)

__all__ = [
    "Aggregate",
    "Campaign",
    "PairedComparison",
    "sweep_fault_plans",
    "CampaignStore",
    "CellResult",
    "PoolExecutor",
    "ResultStore",
    "SerialExecutor",
    "cell_key",
    "make_executor",
    "run_cell",
    "run_cells",
    "ExperimentConfig",
    "ResidentNetwork",
    "RunResult",
    "build_resident",
    "run_experiment",
    "run_experiment_with_workload",
    "SoakConfig",
    "SoakReport",
    "SoakSample",
    "run_soak",
    "assert_sound",
    "verify_execution",
    "E10_KINDS",
    "E10_SIZES",
    "sweep_widenet",
    "widenet_config",
    "E11_SPEEDS",
    "E11_WORKLOADS",
    "hetero_config",
    "sweep_hetero",
    "PAPER_DEADLINE",
    "PAPER_OMEGA",
    "PAPER_SURPLUSES",
    "paper_example_adjusted",
    "paper_example_trial_mapping",
    "run_fig1_scenario",
    "table1_rows",
    "format_table",
]
