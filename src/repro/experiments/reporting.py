"""Plain-text result tables (the benches' output format)."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


def format_table(
    rows: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict-rows as an aligned monospace table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    widths = {c: len(str(c)) for c in cols}
    rendered: List[List[str]] = []
    for row in rows:
        line = []
        for c in cols:
            v = row.get(c, "")
            if isinstance(v, float):
                s = f"{v:.4g}"
            else:
                s = str(v)
            widths[c] = max(widths[c], len(s))
            line.append(s)
        rendered.append(line)
    sep = "-+-".join("-" * widths[c] for c in cols)
    header = " | ".join(str(c).ljust(widths[c]) for c in cols)
    body = "\n".join(
        " | ".join(s.ljust(widths[c]) for s, c in zip(line, cols)) for line in rendered
    )
    out = f"{header}\n{sep}\n{body}"
    if title:
        out = f"{title}\n{out}"
    return out


def format_kv(title: str, pairs: Dict[str, Any]) -> str:
    """Render a labelled key/value block."""
    width = max(len(k) for k in pairs) if pairs else 0
    lines = [title]
    for k, v in pairs.items():
        if isinstance(v, float):
            v = f"{v:.4g}"
        lines.append(f"  {k.ljust(width)} : {v}")
    return "\n".join(lines)
