"""The fault injector: hooks a plan into a live network.

The injector registers itself as the network's transmit interceptor and
schedules the plan's down/up window toggles on the simulator. At every
physical transmission it decides, in a fixed order:

1. link down?  → drop (``lost_link_down``);
2. either endpoint site down? → drop (``lost_site_down``);
3. i.i.d. loss draw against the link's loss probability → drop
   (``lost_random``);
4. delay jitter → extra uniform ``[0, jitter]`` delay (the link's FIFO
   clamp keeps deliveries order-preserving).

Faults are evaluated at *send* time: a message in flight when its link goes
down still arrives (the window severed the link, not the ether). Multi-hop
protocol messages re-enter the transmit path at every hop, so a partition
anywhere along the route loses them naturally.

Determinism: one ``numpy`` generator seeded from ``SeedSequence([entropy,
plan.seed])`` drives churn expansion, loss draws and jitter. The injector
never touches ambient state; with a fixed seed the exact same messages are
lost at the exact same times.

Installing a **zero plan** is a no-op by construction: ``install()`` leaves
the network untouched, no RNG is ever consulted, and the run is bit-for-bit
identical to one without the injector (the acceptance contract).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.faults.plan import FaultPlan, LinkDownWindow, SiteDownWindow
from repro.simnet.link import Link
from repro.simnet.message import Message
from repro.simnet.network import Network
from repro.types import SiteId, Time


@dataclass
class FaultStats:
    """Counters of everything the injector did to one run."""

    lost_link_down: int = 0
    lost_site_down: int = 0
    lost_random: int = 0
    jittered: int = 0
    link_down_events: int = 0
    site_down_events: int = 0
    #: jobs that arrived on a partitioned site and were dropped
    jobs_dropped: int = 0
    #: physical transmissions seen by the interceptor
    transmissions: int = 0
    lost_by_type: Counter = field(default_factory=Counter)

    @property
    def lost_total(self) -> int:
        """Messages dropped by the injector, summed over every cause."""
        return self.lost_link_down + self.lost_site_down + self.lost_random

    def row(self) -> Dict[str, object]:
        """Flat dict for table printing."""
        return {
            "lost": self.lost_total,
            "lost_link": self.lost_link_down,
            "lost_site": self.lost_site_down,
            "lost_rand": self.lost_random,
            "jittered": self.jittered,
            "link_downs": self.link_down_events,
            "site_downs": self.site_down_events,
            "jobs_dropped": self.jobs_dropped,
        }


class FaultInjector:
    """Drives one :class:`~repro.faults.plan.FaultPlan` against a network.

    Usage (the experiment runner does this)::

        inj = FaultInjector(net, plan, entropy=config.seed)
        ...setup phase runs on the pristine network...
        inj.arm(t0=workload_start, default_horizon=duration)

    Parameters
    ----------
    network:
        The live network to intercept.
    plan:
        The declarative fault plan (window times relative to ``t0``).
    entropy:
        Extra seed material (typically the experiment seed) mixed with
        ``plan.seed`` so replicated campaigns get independent fault streams
        while staying reproducible.
    """

    def __init__(self, network: Network, plan: FaultPlan, entropy: int = 0) -> None:
        self.network = network
        self.sim = network.sim
        self.tracer = network.tracer
        self.plan = plan
        self.stats = FaultStats()
        self.rng = np.random.default_rng(np.random.SeedSequence([entropy, plan.seed]))
        #: active down-window counts per link/site — counters, not sets,
        #: because churn windows routinely overlap and the element must
        #: stay down until the *last* covering window closes
        self._down_links: Dict[Tuple[SiteId, SiteId], int] = {}
        self._down_sites: Dict[SiteId, int] = {}
        #: concrete windows after churn expansion (viz overlay reads these)
        self.link_windows: List[LinkDownWindow] = []
        self.site_windows: List[SiteDownWindow] = []
        #: optional membership hooks, fired on the *real* transitions only
        #: (0 -> down and down -> 0, never on overlapping-window re-entries).
        #: The membership manager uses ``on_site_up`` for rejoin handling;
        #: both stay ``None`` on plain churn runs, leaving behaviour (and
        #: the E7 identity goldens) untouched.
        self.on_site_down: Optional[Callable[[SiteId], None]] = None
        self.on_site_up: Optional[Callable[[SiteId], None]] = None
        self._armed = False

    # -- lifecycle ----------------------------------------------------------

    def arm(self, t0: Time = 0.0, default_horizon: Time = 100.0) -> None:
        """Install the interceptor and schedule every window toggle.

        ``t0`` is the simulated time the plan's clocks start (workload
        start); ``default_horizon`` bounds churn expansion when a
        :class:`~repro.faults.plan.ChurnSpec` has no explicit horizon.
        A zero plan arms nothing — the network stays pristine.
        """
        if self._armed:
            raise SimulationError("fault injector already armed")
        self._armed = True
        if not self.plan.perturbs_network():
            # joins-only plans are handled entirely by repro.membership;
            # the transmit path stays pristine.
            return
        self.link_windows = list(self.plan.link_windows)
        self.site_windows = list(self.plan.site_windows)
        self._expand_churn(default_horizon)
        self.network.interceptor = self
        for w in self.link_windows:
            self.sim.schedule_at(t0 + w.start, lambda w=w: self._link_down(w))
            self.sim.schedule_at(t0 + w.end, lambda w=w: self._link_up(w))
        for w in self.site_windows:
            self.sim.schedule_at(t0 + w.start, lambda w=w: self._site_down(w))
            self.sim.schedule_at(t0 + w.end, lambda w=w: self._site_up(w))

    def _expand_churn(self, default_horizon: Time) -> None:
        """Materialize churn specs into concrete windows (plan RNG)."""
        spec = self.plan.link_churn
        if spec is not None and spec.n_events > 0:
            keys = sorted(link.key for link in self.network.links())
            horizon = spec.horizon if spec.horizon is not None else default_horizon
            for _ in range(spec.n_events):
                u, v = keys[int(self.rng.integers(len(keys)))]
                start = float(self.rng.uniform(0.0, horizon))
                length = float(self.rng.exponential(spec.mean_downtime))
                self.link_windows.append(LinkDownWindow(u, v, start, start + max(length, 1e-6)))
        spec = self.plan.site_churn
        if spec is not None and spec.n_events > 0:
            sids = self.network.site_ids()
            horizon = spec.horizon if spec.horizon is not None else default_horizon
            for _ in range(spec.n_events):
                sid = sids[int(self.rng.integers(len(sids)))]
                start = float(self.rng.uniform(0.0, horizon))
                length = float(self.rng.exponential(spec.mean_downtime))
                self.site_windows.append(SiteDownWindow(sid, start, start + max(length, 1e-6)))

    # -- window toggles -----------------------------------------------------

    def _link_down(self, w: LinkDownWindow) -> None:
        n = self._down_links.get(w.key, 0)
        self._down_links[w.key] = n + 1
        if n == 0:  # 0 -> 1 transition: the link actually went down
            self.stats.link_down_events += 1
            self.tracer.emit(self.sim.now, "fault.link_down", None, u=w.u, v=w.v)

    def _link_up(self, w: LinkDownWindow) -> None:
        n = self._down_links.get(w.key, 0) - 1
        if n <= 0:
            self._down_links.pop(w.key, None)
            self.tracer.emit(self.sim.now, "fault.link_up", None, u=w.u, v=w.v)
        else:  # another window still covers the link
            self._down_links[w.key] = n

    def _site_down(self, w: SiteDownWindow) -> None:
        n = self._down_sites.get(w.site, 0)
        self._down_sites[w.site] = n + 1
        if n == 0:
            self.stats.site_down_events += 1
            self.tracer.emit(self.sim.now, "fault.site_down", w.site)
            if self.on_site_down is not None:
                self.on_site_down(w.site)

    def _site_up(self, w: SiteDownWindow) -> None:
        n = self._down_sites.get(w.site, 0) - 1
        if n <= 0:
            self._down_sites.pop(w.site, None)
            self.tracer.emit(self.sim.now, "fault.site_up", w.site)
            if self.on_site_up is not None:
                self.on_site_up(w.site)
        else:
            self._down_sites[w.site] = n

    # -- queries ------------------------------------------------------------

    def site_down(self, sid: SiteId) -> bool:
        """Is ``sid`` currently partitioned? (Runner checks job arrivals.)"""
        return sid in self._down_sites

    def link_down(self, u: SiteId, v: SiteId) -> bool:
        """True while the link between ``u`` and ``v`` is severed."""
        key = (u, v) if u < v else (v, u)
        return key in self._down_links

    # -- the transmit hook --------------------------------------------------

    def on_transmit(self, msg: Message, link: Link) -> Optional[Time]:
        """Fate of one physical transmission.

        Returns the extra delay to add (usually 0.0), or ``None`` to drop
        the message.
        """
        self.stats.transmissions += 1
        if link.key in self._down_links:
            return self._drop(msg, "link_down")
        if msg.src in self._down_sites or msg.dst in self._down_sites:
            return self._drop(msg, "site_down")
        p = self.plan.loss_for(link.key)
        if p > 0.0 and self.rng.random() < p:
            return self._drop(msg, "random")
        if self.plan.delay_jitter > 0.0:
            self.stats.jittered += 1
            return float(self.rng.uniform(0.0, self.plan.delay_jitter))
        return 0.0

    def _drop(self, msg: Message, cause: str) -> None:
        if cause == "link_down":
            self.stats.lost_link_down += 1
        elif cause == "site_down":
            self.stats.lost_site_down += 1
        else:
            self.stats.lost_random += 1
        self.stats.lost_by_type[msg.mtype] += 1
        self.tracer.emit(
            self.sim.now, "fault.drop", msg.src,
            mtype=msg.mtype, dst=msg.dst, cause=cause, uid=msg.uid,
        )
        return None
