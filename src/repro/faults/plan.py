"""The declarative fault plan.

A :class:`FaultPlan` describes *what goes wrong and when*, independent of
any particular network instance:

* :class:`LinkDownWindow` — a link is severed during ``[start, end)``;
* :class:`SiteDownWindow` — a site is partitioned from the network during
  ``[start, end)`` (fail-silent: every message to or from it is lost, and
  jobs arriving on it are dropped; local timers and the compute processor
  keep running, modelling a network partition rather than a power cut);
* ``loss_prob`` / ``link_loss`` — i.i.d. per-transmission message loss,
  globally or per link;
* ``delay_jitter`` — extra uniform ``[0, jitter]`` delay per transmission
  (the link's FIFO clamp still preserves the order-preserving assumption);
* :class:`ChurnSpec` — random down/up windows generated at arm time from
  the plan's seed, so campaigns can say "≈6 link flaps over the run"
  without enumerating them;
* :class:`JoinSpec` / :class:`SiteJoinEvent` — membership *growth*: sites
  that join the network mid-run (the PR-8 survivability layer). A join
  wires a latent site into the live topology and triggers the incremental
  routing repair of :mod:`repro.membership`. Joins are expanded from a
  separate RNG stream than churn, so adding ``joins=K`` to an existing
  plan never reshuffles its churn windows.

All window times are **relative to workload start** (the experiment runner
arms the injector after the routing/setup phase), so PCS construction and
routing always complete on the pristine network — faults stress the
*protocol*, not the bootstrap.

The plan is a frozen dataclass: hashable up to its tuple fields, safe to
share across replicated campaign runs. ``FaultPlan.is_zero()`` is the
contract the injector relies on: a zero plan must never perturb a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.errors import ConfigError
from repro.types import SiteId, Time


@dataclass(frozen=True)
class LinkDownWindow:
    """Link ``u <-> v`` is down during ``[start, end)``."""

    u: SiteId
    v: SiteId
    start: Time
    end: Time

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise ConfigError(f"link window on self-loop ({self.u},{self.v})")
        if self.start < 0 or self.end <= self.start:
            raise ConfigError(
                f"link window ({self.u},{self.v}) needs 0 <= start < end, "
                f"got [{self.start}, {self.end})"
            )
        if self.u > self.v:  # canonical order, like Link.key
            u, v = self.v, self.u
            object.__setattr__(self, "u", u)
            object.__setattr__(self, "v", v)

    @property
    def key(self) -> Tuple[SiteId, SiteId]:
        """The canonical ``(min, max)`` link identifier, like ``Link.key``."""
        return (self.u, self.v)


@dataclass(frozen=True)
class SiteDownWindow:
    """Site is partitioned from the network during ``[start, end)``."""

    site: SiteId
    start: Time
    end: Time

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ConfigError(
                f"site window ({self.site}) needs 0 <= start < end, "
                f"got [{self.start}, {self.end})"
            )


@dataclass(frozen=True)
class ChurnSpec:
    """Randomly generated down windows, expanded at arm time.

    ``n_events`` windows start uniformly over ``[0, horizon)`` (horizon
    defaults to the workload duration when the injector arms); window
    lengths are exponential with mean ``mean_downtime``; victims are drawn
    uniformly from the live topology. Expansion uses the plan's seeded
    generator, so the same (plan, experiment seed) yields the same windows.
    """

    n_events: int
    mean_downtime: Time = 10.0
    horizon: Optional[Time] = None

    def __post_init__(self) -> None:
        if self.n_events < 0:
            raise ConfigError(f"churn n_events must be >= 0, got {self.n_events}")
        if self.mean_downtime <= 0:
            raise ConfigError(f"churn mean_downtime must be > 0, got {self.mean_downtime}")
        if self.horizon is not None and self.horizon <= 0:
            raise ConfigError(f"churn horizon must be > 0, got {self.horizon}")


@dataclass(frozen=True)
class JoinSpec:
    """Randomly generated site joins, expanded at arm time.

    The growth-side mirror of :class:`ChurnSpec`: ``n_sites`` new sites
    join at times uniform over ``[0, horizon)`` (horizon defaults to the
    workload duration when the membership manager arms). Each joiner wires
    ``links`` edges to distinct already-present sites with delays uniform
    in ``delay_range``. Expansion uses a dedicated seeded stream
    (``SeedSequence([entropy, plan.seed, 1])``) so the plan's churn
    windows stay byte-identical when joins are added.
    """

    n_sites: int
    links: int = 2
    delay_range: Tuple[float, float] = (0.2, 1.0)
    horizon: Optional[Time] = None

    def __post_init__(self) -> None:
        if self.n_sites < 0:
            raise ConfigError(f"join n_sites must be >= 0, got {self.n_sites}")
        if self.links < 1:
            raise ConfigError(f"join links must be >= 1, got {self.links}")
        lo, hi = self.delay_range
        if lo <= 0 or hi < lo:
            raise ConfigError(f"join delay_range must be 0 < lo <= hi, got {self.delay_range}")
        if self.horizon is not None and self.horizon <= 0:
            raise ConfigError(f"join horizon must be > 0, got {self.horizon}")


@dataclass(frozen=True)
class SiteJoinEvent:
    """One explicit membership join at ``time`` (relative to workload start).

    ``links`` is ``((peer, delay), ...)``. The joining site's id is
    assigned by the runner — latent sites get ids ``n_base, n_base+1, ...``
    in declaration order (explicit events first, then expanded
    :class:`JoinSpec` joins, time-ordered) — so plans stay portable across
    topologies of different sizes. Peers must be base sites or earlier
    joiners at apply time.
    """

    time: Time
    links: Tuple[Tuple[SiteId, Time], ...]

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigError(f"join time must be >= 0, got {self.time}")
        if not self.links:
            raise ConfigError("a join event needs at least one link")
        peers = [p for p, _ in self.links]
        if len(set(peers)) != len(peers):
            raise ConfigError(f"join event has duplicate peers {peers}")
        for peer, delay in self.links:
            if delay <= 0:
                raise ConfigError(f"join link to {peer} needs delay > 0, got {delay}")


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of every fault a run will experience.

    The default instance is the **zero plan**: installing it is a no-op and
    every result stays bit-for-bit identical to a run without faults (the
    acceptance contract of the subsystem; asserted by the tier-1 identity
    tests and ``benchmarks/bench_e7_faults.py``).
    """

    link_windows: Tuple[LinkDownWindow, ...] = ()
    site_windows: Tuple[SiteDownWindow, ...] = ()
    #: global per-transmission loss probability
    loss_prob: float = 0.0
    #: per-link overrides of ``loss_prob``, keyed by canonical (u, v)
    link_loss: Tuple[Tuple[Tuple[SiteId, SiteId], float], ...] = ()
    #: extra uniform [0, delay_jitter] delay per transmission
    delay_jitter: Time = 0.0
    #: random link flaps generated at arm time
    link_churn: Optional[ChurnSpec] = None
    #: random site partitions generated at arm time
    site_churn: Optional[ChurnSpec] = None
    #: explicit membership joins (applied by repro.membership)
    join_events: Tuple[SiteJoinEvent, ...] = ()
    #: random membership joins generated at arm time
    joins: Optional[JoinSpec] = None
    #: fault-stream seed, mixed with the experiment seed by the injector
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_prob < 1.0:
            raise ConfigError(f"loss_prob must be in [0, 1), got {self.loss_prob}")
        for key, p in self.link_loss:
            if not 0.0 <= p < 1.0:
                raise ConfigError(f"link_loss[{key}] must be in [0, 1), got {p}")
        if self.delay_jitter < 0:
            raise ConfigError(f"delay_jitter must be >= 0, got {self.delay_jitter}")

    # -- classification -----------------------------------------------------

    def is_zero(self) -> bool:
        """True iff this plan can never perturb a run.

        Covers *both* sides of the contract: no message faults
        (:meth:`perturbs_network`) and no membership growth
        (:meth:`has_joins`). A zero plan through the resident service is
        bit-for-bit a no-faults run (pinned by the Hypothesis property in
        ``tests/membership/test_survivable_service.py``).
        """
        return not self.perturbs_network() and not self.has_joins()

    def perturbs_network(self) -> bool:
        """True iff the plan can lose, delay or partition messages.

        The hardened-protocol requirement keys off this, not
        :meth:`is_zero`: a join-only plan grows the network but never
        drops a message, so it does not need ack/retransmit hardening.
        """
        return bool(
            self.link_windows
            or self.site_windows
            or self.loss_prob != 0.0
            or any(p != 0.0 for _, p in self.link_loss)
            or self.delay_jitter != 0.0
            or (self.link_churn is not None and self.link_churn.n_events > 0)
            or (self.site_churn is not None and self.site_churn.n_events > 0)
        )

    def has_joins(self) -> bool:
        """True iff the plan adds members (explicit or expanded joins)."""
        return self.n_join_sites() > 0

    def n_join_sites(self) -> int:
        """How many latent sites the runner must pre-build for this plan."""
        n = len(self.join_events)
        if self.joins is not None:
            n += self.joins.n_sites
        return n

    def loss_for(self, key: Tuple[SiteId, SiteId]) -> float:
        """Loss probability of the canonical link ``key``."""
        for k, p in self.link_loss:
            if k == key:
                return p
        return self.loss_prob

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a compact CLI spec into a plan.

        Comma-separated ``key=value`` pairs::

            loss=0.05,jitter=0.5,links=6,sites=2,downtime=20,horizon=300,seed=3
            sites=4,joins=3,join_links=2,horizon=600

        ``links``/``sites`` are churn event counts; ``downtime`` and
        ``horizon`` parameterize both churn specs. ``joins`` is the number
        of sites joining mid-run (``join_links`` edges each; ``horizon``
        bounds the join times too). Unknown keys raise
        :class:`~repro.errors.ConfigError`.
        """
        fields: Dict[str, float] = {}
        for part in filter(None, (p.strip() for p in spec.split(","))):
            if "=" not in part:
                raise ConfigError(f"bad fault spec element {part!r} (want key=value)")
            key, _, val = part.partition("=")
            try:
                fields[key.strip()] = float(val)
            except ValueError:
                raise ConfigError(f"bad fault spec value {part!r}") from None
        known = {
            "loss", "jitter", "links", "sites", "downtime", "horizon", "seed",
            "joins", "join_links",
        }
        unknown = set(fields) - known
        if unknown:
            raise ConfigError(f"unknown fault spec keys {sorted(unknown)}; known: {sorted(known)}")
        downtime = fields.get("downtime", 10.0)
        horizon = fields.get("horizon")
        churn = {}
        if fields.get("links", 0) > 0:
            churn["link_churn"] = ChurnSpec(int(fields["links"]), downtime, horizon)
        if fields.get("sites", 0) > 0:
            churn["site_churn"] = ChurnSpec(int(fields["sites"]), downtime, horizon)
        if fields.get("joins", 0) > 0:
            churn["joins"] = JoinSpec(
                int(fields["joins"]),
                links=int(fields.get("join_links", 2)),
                horizon=horizon,
            )
        return cls(
            loss_prob=fields.get("loss", 0.0),
            delay_jitter=fields.get("jitter", 0.0),
            seed=int(fields.get("seed", 0)),
            **churn,
        )

    def scaled(self, loss_prob: float) -> "FaultPlan":
        """This plan with a different global loss probability (sweeps)."""
        return replace(self, loss_prob=loss_prob)


def hardened(
    config,
    ack_timeout: Time = 5.0,
    ack_retries: int = 1,
    member_lease: Optional[Time] = None,
):
    """An :class:`~repro.core.config.RTDSConfig` copy with the protocol
    hardening switched on — the required companion of a nonzero plan."""
    return replace(
        config,
        ack_timeout=ack_timeout,
        ack_retries=ack_retries,
        member_lease=member_lease,
    )
