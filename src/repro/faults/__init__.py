"""Fault injection and dynamic-network modelling.

The paper assumes bidirectional, faithful, loss-less links and faultless
sites (§2). This package deliberately breaks those assumptions — under full
experimental control — so the protocol's behaviour under churn becomes a
first-class measurable input:

* :mod:`repro.faults.plan` — the declarative :class:`FaultPlan`: link
  down/up windows, site crash/recover windows, per-link (or global)
  message-loss probability, delay jitter, random-churn generators that
  expand deterministically from the plan's seed, and membership *joins*
  (:class:`JoinSpec` / :class:`SiteJoinEvent`) applied by
  :mod:`repro.membership`;
* :mod:`repro.faults.injector` — the :class:`FaultInjector` that hooks the
  :class:`~repro.simnet.network.Network` transmit path and the
  deterministic DES engine. An all-zero plan installs **nothing**: the
  no-faults code path is untouched and runs remain bit-for-bit identical.

Determinism: every random decision (loss draws, jitter, churn expansion)
comes from one ``numpy`` generator seeded from ``(experiment seed, plan
seed)`` — no ambient state, so a fixed seed reproduces the exact fault
sequence.
"""

from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.plan import (
    ChurnSpec,
    FaultPlan,
    JoinSpec,
    LinkDownWindow,
    SiteDownWindow,
    SiteJoinEvent,
    hardened,
)

__all__ = [
    "ChurnSpec",
    "FaultPlan",
    "FaultInjector",
    "FaultStats",
    "JoinSpec",
    "LinkDownWindow",
    "SiteDownWindow",
    "SiteJoinEvent",
    "hardened",
]
