"""Common type aliases and small shared constants.

Keeping these in one leaf module avoids import cycles between the graph,
network and scheduling packages.
"""

from __future__ import annotations

import sys
from typing import Hashable

#: ``@dataclass(**DATACLASS_SLOTS)`` adds ``slots=True`` where the runtime
#: supports it (3.10+). The hot-path record types (trace events, route
#: entries, reservations) are slotted for memory and attribute-access
#: speed; on 3.9 they silently fall back to dict-backed instances with
#: identical semantics.
DATACLASS_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}

#: Identifier of a task inside one job DAG. Any hashable works; the worked
#: example from the paper uses the integers 1..5.
TaskId = Hashable

#: Identifier of a site (network node). Sites are created by the topology
#: generators as consecutive integers starting at 0.
SiteId = int

#: Identifier of a *logical* processor produced by the Mapper. Logical
#: processors are indexed 0..|U|-1 by descending surplus (the paper writes
#: U = 1..|U|; we use 0-based indices internally and 1-based in reports).
LogicalProc = int

#: Identifier of a job instance (unique across a simulation run).
JobId = int

#: Simulated time and durations; continuous, in arbitrary units.
Time = float

#: Numeric tolerance used by schedule/feasibility comparisons. All protocol
#: arithmetic is float; EPS absorbs representation noise without hiding
#: genuine deadline violations (paper quantities are O(1)..O(1e4)).
EPS: float = 1e-9


def feq(a: float, b: float, eps: float = EPS) -> bool:
    """Float equality within :data:`EPS` (scale-free for our value ranges)."""
    return abs(a - b) <= eps


def fle(a: float, b: float, eps: float = EPS) -> bool:
    """``a <= b`` within tolerance."""
    return a <= b + eps


def flt(a: float, b: float, eps: float = EPS) -> bool:
    """``a < b`` with tolerance (strictly smaller by more than eps)."""
    return a < b - eps
