"""Membership & survivability: joins, incremental repair, leader election.

The paper's model (§2) fixes the network for the lifetime of the system.
This package makes membership dynamic — under full experimental control —
so the long-lived admission service of :mod:`repro.service` survives a
network that grows and heals instead of only shrinking:

* :mod:`repro.membership.repair` — O(affected-rows) incremental update of
  the shared vectorized routing tables after a join, bit-for-bit equal to
  a full :func:`~repro.routing.vectorized.phased_tables` rebuild;
* :mod:`repro.membership.manager` — the :class:`MembershipManager` that
  expands a plan's :class:`~repro.faults.plan.JoinSpec` /
  :class:`~repro.faults.plan.SiteJoinEvent` declarations, applies JOIN
  (links up → tables repaired → spheres refreshed) and counts REJOIN
  handshakes after churn downtime;
* :mod:`repro.membership.election` — bully-style leader election so the
  centralized baseline detects coordinator loss via heartbeat timeout,
  elects a successor (retry/backoff on election messages) and resumes
  admission, with split-brain beacon repair and a stale-assignment probe.

Everything is opt-in: a plan without joins builds no manager, a config
without ``election`` builds no election state, and the no-fault path
stays byte-identical (the identity goldens pin it).
"""

from repro.membership.election import (
    CoordinatorKit,
    ElectionConfig,
    ElectionManager,
    ElectionStats,
    install_elections,
)
from repro.membership.manager import JoinEvent, MembershipManager, MembershipStats
from repro.membership.repair import hop_distances, repair_after_join

__all__ = [
    "CoordinatorKit",
    "ElectionConfig",
    "ElectionManager",
    "ElectionStats",
    "JoinEvent",
    "MembershipManager",
    "MembershipStats",
    "hop_distances",
    "install_elections",
    "repair_after_join",
]
