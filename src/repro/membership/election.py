"""Bully-style leader election for the centralized baseline.

Without this, the centralized configuration silently dies with its
coordinator under site churn — every submission routed to a partitioned
site 0 is dropped, which makes fault campaigns an unfair fight across
algorithms. With election enabled (``ExperimentConfig.election``), every
:class:`~repro.baselines.centralized.CentralizedSite` runs an
:class:`ElectionManager`:

* **Heartbeat** — members ping their believed coordinator every
  ``heartbeat_period``; a coordinator answers with a pong and, on its own
  tick, beacons ``E_COORD`` to everyone (the beacon doubles as the
  split-brain suppressor below). ``heartbeat_timeout`` of silence makes a
  member suspect the coordinator and start an election.
* **Election (bully)** — the suspect sends ``E_ELECTION`` to every
  higher-id site. Any live higher site answers ``E_ALIVE`` (suppressing
  the suspect) and runs its own election; a suspect that hears no higher
  site within ``election_timeout`` declares itself, rebuilds the
  coordinator state from the :class:`CoordinatorKit` (shadow timelines
  snapshot the sites' *current* plans) and broadcasts ``E_COORD``.
  Rounds that stall — a higher site answered but never announced — are
  retried ``retries`` times with exponential ``backoff`` before the
  suspect takes over anyway (liveness; the beacon protocol repairs any
  resulting dual claim).
* **Split-brain repair** — a healed old coordinator keeps believing it
  rules until it hears a higher claimant's beacon, then abdicates
  (drops its coordinator state, adopts the claimant); a lower claimant
  is answered with a re-asserting beacon. Members only accept a claimant
  that outranks their current belief, unless they are themselves
  suspicious — so stale low-id beacons cannot roll the network back.
* **Stale assignments** — a new coordinator's shadow snapshot cannot see
  the old coordinator's still-in-flight ``EXEC_ASSIGN``; hosts therefore
  probe every assignment against their real timeline before committing
  and drop conflicting ones (counted, see
  :meth:`CentralizedSite.commit_assignment`) instead of crashing.

Election messages ride the normal routed transport, so partitions drop
them like any other traffic — retry/backoff is what makes the protocol
live under message loss. Everything here is opt-in: with
``election=None`` (the default) no handler, no timer and no message
exists, and centralized runs are byte-identical to before.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ConfigError, RoutingError
from repro.types import SiteId, Time

MSG_E_PING = "E_PING"
MSG_E_PONG = "E_PONG"
MSG_E_ELECTION = "E_ELECTION"
MSG_E_ALIVE = "E_ALIVE"
MSG_E_COORD = "E_COORD"


@dataclass(frozen=True)
class ElectionConfig:
    """Timing knobs of the heartbeat + bully protocol (simulated time)."""

    heartbeat_period: float = 5.0
    heartbeat_timeout: float = 15.0
    election_timeout: float = 5.0
    #: extra election rounds after the first before a stalled suspect
    #: takes over anyway
    retries: int = 2
    #: multiplier on ``election_timeout`` per retry round
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.heartbeat_period <= 0:
            raise ConfigError(f"heartbeat_period must be > 0, got {self.heartbeat_period}")
        if self.heartbeat_timeout < self.heartbeat_period:
            raise ConfigError(
                "heartbeat_timeout must be >= heartbeat_period "
                f"({self.heartbeat_timeout} < {self.heartbeat_period})"
            )
        if self.election_timeout <= 0:
            raise ConfigError(f"election_timeout must be > 0, got {self.election_timeout}")
        if self.retries < 0:
            raise ConfigError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 1.0:
            raise ConfigError(f"backoff must be >= 1.0, got {self.backoff}")


@dataclass(frozen=True)
class CoordinatorKit:
    """Everything needed to (re)build a coordinator on any site.

    The runner assembles one per centralized run — the same site map,
    distance oracle and shortlist the original ``install_coordinator``
    used — so an election winner's coordinator is constructed exactly
    like site 0's was, just later (its shadow snapshots the plans as they
    stand at victory time).
    """

    all_sites: Dict[SiteId, object]
    distances: Dict[SiteId, Dict[SiteId, Time]]
    shortlist: int = 8


@dataclass
class ElectionStats:
    """Counters of one site's election activity."""

    pings_sent: int = 0
    elections_started: int = 0
    elections_won: int = 0
    #: adopted a different coordinator (abdications included)
    coordinator_changes: int = 0
    retries: int = 0
    #: assignments from a deposed coordinator dropped by the commit probe
    stale_assignments_dropped: int = 0

    def row(self) -> Dict[str, int]:
        return dict(self.__dict__)


class ElectionManager:
    """One site's view of the heartbeat + bully protocol (see module docs)."""

    def __init__(self, site, kit: CoordinatorKit, cfg: ElectionConfig) -> None:
        self.site = site
        self.kit = kit
        self.cfg = cfg
        self.sim = site.network.sim
        self.stats = ElectionStats()
        self._peers: List[SiteId] = sorted(kit.all_sites)
        self._last_heard: Time = 0.0
        self._electing = False
        #: generation counter — timeouts from superseded rounds are inert
        self._round = 0
        self._attempts = 0
        self._heard_higher = False
        site.on(MSG_E_PING, self._h_ping)
        site.on(MSG_E_PONG, self._h_pong)
        site.on(MSG_E_ELECTION, self._h_election)
        site.on(MSG_E_ALIVE, self._h_alive)
        site.on(MSG_E_COORD, self._h_coord)
        site.election = self

    @property
    def suspecting(self) -> bool:
        """True while this site believes the coordinator is gone."""
        return self._electing

    # -- lifecycle ----------------------------------------------------------

    def arm(self) -> None:
        """Start the heartbeat loop (call at workload start)."""
        self._last_heard = self.sim.now
        self.sim.schedule(self.cfg.heartbeat_period, self._tick)

    def _tick(self) -> None:
        site = self.site
        if site.coordinator is not None:
            self._beacon()
        elif not self._electing:
            if site.coordinator_id == site.sid:
                # believed coordinator is me, but I hold no coordinator
                # state (abdicated): someone has to rule
                self._start_election()
            else:
                self.stats.pings_sent += 1
                self._send(site.coordinator_id, MSG_E_PING, {"origin": site.sid})
                if self.sim.now - self._last_heard > self.cfg.heartbeat_timeout:
                    self._start_election()
        self.sim.schedule(self.cfg.heartbeat_period, self._tick)

    def _send(self, dst: SiteId, mtype: str, payload: dict) -> None:
        # routed like all traffic; a partition mid-route just loses it
        # (retry/backoff, not the transport, provides liveness)
        try:
            self.site.send_to(dst, mtype, payload, size=1.0)
        except RoutingError:  # pragma: no cover - needs a partitioned topology
            pass

    def _beacon(self) -> None:
        for sid in self._peers:
            if sid != self.site.sid:
                self._send(sid, MSG_E_COORD, {"cid": self.site.sid})

    # -- the bully rounds ---------------------------------------------------

    def _start_election(self) -> None:
        self._electing = True
        self._round += 1
        self._attempts = 0
        self.stats.elections_started += 1
        self.site.trace("election.start", round=self._round)
        self._count("election.started")
        self._run_round()

    def _run_round(self) -> None:
        higher = [s for s in self._peers if s > self.site.sid]
        if not higher:
            self._become_coordinator()
            return
        self._heard_higher = False
        rnd, attempt = self._round, self._attempts
        for sid in higher:
            self._send(sid, MSG_E_ELECTION, {"origin": self.site.sid, "round": rnd})
        timeout = self.cfg.election_timeout * (self.cfg.backoff**attempt)
        self.sim.schedule(timeout, lambda: self._round_timeout(rnd, attempt))

    def _round_timeout(self, rnd: int, attempt: int) -> None:
        if not self._electing or rnd != self._round or attempt != self._attempts:
            return
        if not self._heard_higher:
            self._become_coordinator()
        elif self._attempts < self.cfg.retries:
            # a higher site answered but never announced — retry, backed off
            self._attempts += 1
            self.stats.retries += 1
            self._run_round()
        else:
            # liveness over protocol purity: take over; if the higher site
            # eventually wins too, the beacon/abdication rule repairs it
            self._become_coordinator()

    def _become_coordinator(self) -> None:
        from repro.baselines.centralized import CentralizedCoordinator

        site = self.site
        self._electing = False
        site.coordinator_id = site.sid
        site.coordinator = CentralizedCoordinator(
            site, self.kit.all_sites, self.kit.distances, self.kit.shortlist
        )
        self._last_heard = self.sim.now
        self.stats.elections_won += 1
        site.trace("election.won", round=self._round)
        self._count("election.won")
        self._beacon()

    # -- message handlers ---------------------------------------------------

    def _h_ping(self, msg) -> None:
        if self.site.coordinator is not None:
            self._send(msg.payload["origin"], MSG_E_PONG, {"origin": self.site.sid})

    def _h_pong(self, msg) -> None:
        if msg.payload["origin"] == self.site.coordinator_id:
            self._last_heard = self.sim.now

    def _h_election(self, msg) -> None:
        origin = msg.payload["origin"]
        if origin >= self.site.sid:
            return
        self._send(origin, MSG_E_ALIVE, {"origin": self.site.sid, "round": msg.payload["round"]})
        if self.site.coordinator is not None:
            self._send(origin, MSG_E_COORD, {"cid": self.site.sid})
        elif not self._electing:
            self._start_election()

    def _h_alive(self, msg) -> None:
        if self._electing and msg.payload.get("round") == self._round:
            self._heard_higher = True

    def _h_coord(self, msg) -> None:
        cid = msg.payload["cid"]
        site = self.site
        if cid == site.sid:
            return
        if site.coordinator is not None:
            if cid > site.sid:
                # a higher claimant rules: abdicate, adopt it
                site.coordinator = None
                site.coordinator_id = cid
                self._electing = False
                self._last_heard = self.sim.now
                self.stats.coordinator_changes += 1
                site.trace("election.abdicate", to=cid)
                self._count("election.abdicated")
            else:
                # re-assert to the stale lower claimant
                self._send(cid, MSG_E_COORD, {"cid": site.sid})
            return
        stale = self.sim.now - self._last_heard > self.cfg.heartbeat_timeout
        if (
            self._electing
            or stale
            or cid > site.coordinator_id
            or site.coordinator_id == site.sid
        ):
            if cid != site.coordinator_id:
                self.stats.coordinator_changes += 1
                site.trace("election.adopt", coordinator=cid)
            site.coordinator_id = cid
            self._electing = False
            self._last_heard = self.sim.now

    def _count(self, name: str) -> None:
        metrics = getattr(self.site, "metrics", None)
        if metrics is not None and hasattr(metrics, "count_event"):
            metrics.count_event(name)


def install_elections(resident, cfg: ElectionConfig) -> Dict[SiteId, ElectionManager]:
    """Build and arm one :class:`ElectionManager` per centralized site."""
    kit = resident.coordinator_kit
    if kit is None:
        raise ConfigError(
            "election requires a centralized resident (no coordinator kit present)"
        )
    managers = {s.sid: ElectionManager(s, kit, cfg) for s in resident.sites}
    for m in managers.values():
        m.arm()
    return managers
