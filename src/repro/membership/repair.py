"""Incremental routing-table repair after a membership join.

When site ``j`` joins, every new edge is incident to ``j``. Under the
phased Bellman–Ford with phase budget ``P`` (phase 1 = self + adjacent),
site ``i``'s row after ``P`` phases is realised exclusively by paths of
at most ``P`` edges starting at ``i`` — so a path can traverse ``j`` only
if ``j`` lies within ``P`` hops of ``i`` in the *new* graph. Rows outside
``N_P(j)`` are therefore byte-identical before and after the join, and
only the **affected rows** ``A = N_P(j)`` need recomputation.

Each affected row is itself a pure function of the induced subgraph over
its own ``P``-hop neighbourhood: every candidate offer at phase ``p``
accumulates a neighbour's phase-``(p-1)`` entry, so nothing further than
``P`` hops ever reaches the row. Since every ``i in A`` is within ``P``
hops of ``j``, the union of those neighbourhoods is contained in the
**closure** ``M = N_2P(j)``. Running :func:`phased_tables` on the induced
submatrix ``W[M, M]`` therefore reproduces the affected rows *bit for
bit*: the submatrix keeps ids in ascending order (a monotone relabeling),
so the sweep's ascending next-hop iteration and the lower-id tie-break
compare exactly as in the full computation, and candidate delays are the
same floats added in the same association order.

Cost: ``O(|M|^2 * P)`` instead of ``O(n^2 * P)`` — for a join in a
bounded-degree region this is independent of the network size. The
differential tests in ``tests/membership/test_repair.py`` pin the
bit-for-bit claim against full recomputation for randomized join
sequences.
"""

from __future__ import annotations

import numpy as np

from repro.routing.vectorized import NO_ROUTE, SharedTables, phased_tables


def hop_distances(W: np.ndarray, source: int) -> np.ndarray:
    """BFS hop distances from ``source`` over ``W``'s connectivity.

    Returns an ``n``-vector with ``-1`` for unreachable sites (isolated
    latent sites stay at ``-1`` and never enter any neighbourhood).
    """
    n = W.shape[0]
    finite = np.isfinite(W)
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    d = 0
    while frontier.size:
        d += 1
        nxt = np.flatnonzero(finite[frontier].any(axis=0) & (dist < 0))
        dist[nxt] = d
        frontier = nxt
    return dist


def repair_after_join(shared: SharedTables, W: np.ndarray, joined: int) -> np.ndarray:
    """Repair ``shared`` in place after site ``joined`` gained its links.

    ``W`` must already contain the new symmetric link delays. Mutates the
    (shared, immutable-dataclass-but-mutable-array) tables so every
    :class:`~repro.routing.oracle.NextHopView` / ``DistanceView`` row view
    sees the repaired state immediately. Returns the affected row ids
    (ascending) so the caller can invalidate memoised per-site caches and
    refresh protocol spheres for exactly those sites.
    """
    P = shared.phases
    hd = hop_distances(W, joined)
    reachable = hd >= 0
    affected = np.flatnonzero(reachable & (hd <= P))
    closure = np.flatnonzero(reachable & (hd <= 2 * P))
    sub = phased_tables(W[np.ix_(closure, closure)], P)
    pos = np.searchsorted(closure, affected)

    # Affected rows can only hold entries within their own P-hop
    # neighbourhood, all of which lie inside the closure — so resetting
    # the whole row and writing back the closure columns loses nothing.
    shared.dist[affected, :] = np.inf
    shared.next_hop[affected, :] = NO_ROUTE
    shared.hops[affected, :] = NO_ROUTE
    shared.disc[affected, :] = NO_ROUTE

    cols = np.ix_(affected, closure)
    shared.dist[cols] = sub.dist[pos]
    nh = sub.next_hop[pos]
    shared.next_hop[cols] = np.where(nh >= 0, closure[np.clip(nh, 0, None)], NO_ROUTE)
    shared.hops[cols] = sub.hops[pos]
    shared.disc[cols] = sub.disc[pos]
    return affected
