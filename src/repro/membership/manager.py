"""The membership manager: JOIN/REJOIN against a live resident network.

Joins are *declared* in the :class:`~repro.faults.plan.FaultPlan`
(explicit :class:`~repro.faults.plan.SiteJoinEvent` entries and/or a
seeded :class:`~repro.faults.plan.JoinSpec`) and *applied* here. The
experiment runner pre-builds the joining sites as latent, link-less
members of an extended network — isolated rows of the weight matrix are
provably inert for the phased Bellman–Ford, so the pre-build changes
nothing about the base network's tables — and a join becomes three steps
at its scheduled time:

1. **link up** — the declared links go live on the
   :class:`~repro.simnet.network.Network` and into the shared weight
   matrix (symmetric);
2. **repair** — every :class:`~repro.routing.vectorized.SharedTables` of
   the run is updated by :func:`repro.membership.repair.repair_after_join`
   (O(affected rows), bit-for-bit equal to a full rebuild);
3. **refresh** — the affected sites' memoised
   :class:`~repro.routing.oracle.LazyRoutingTable` entries are
   invalidated and their protocol spheres rebuilt
   (:meth:`~repro.core.rtds.RTDSSite.refresh_sphere`), so the joiner
   starts participating and its neighbours start enrolling it.

REJOIN: when a fault plan also churns sites, the manager hooks the
injector's ``on_site_up`` transition. Under the window fault model a
partitioned site's links (and hence every routing table) never changed,
so a rejoin is a handshake — the sphere refresh reproduces the identical
PCS — but it is counted and traced, and it is the seam where a
lease/invalidStaleState protocol would attach on a real deployment.

Determinism: join expansion draws from ``SeedSequence([entropy,
plan.seed, 1])`` — a *separate* stream from the injector's churn/loss
stream (``[entropy, plan.seed]``), so adding joins to a plan leaves its
churn windows byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.faults.plan import FaultPlan
from repro.membership.repair import repair_after_join
from repro.routing.vectorized import phased_tables
from repro.types import SiteId, Time


@dataclass
class MembershipStats:
    """Counters of everything membership did to one run."""

    joins_applied: int = 0
    rejoins: int = 0
    links_added: int = 0
    #: routing-table rows recomputed across all repairs (the incremental
    #: work actually done; a full rebuild per join would be n rows each)
    repaired_rows: int = 0
    spheres_refreshed: int = 0

    def row(self) -> Dict[str, int]:
        """Flat dict for table printing / soak reports."""
        return dict(self.__dict__)


@dataclass(frozen=True)
class JoinEvent:
    """One concrete, scheduled join (plan events after id assignment)."""

    time: Time
    site: SiteId
    links: Tuple[Tuple[SiteId, Time], ...]


class MembershipManager:
    """Applies one plan's join events to one resident network.

    Parameters
    ----------
    resident:
        The live :class:`~repro.experiments.runner.ResidentNetwork`
        (latent joiner sites already built; ``weight`` and
        ``shared_tables`` populated — the runner guarantees this for
        plans with joins by requiring oracle routing).
    plan:
        The fault plan declaring the joins.
    entropy:
        Extra seed material (the experiment seed), mixed like the
        injector does but on an independent stream.
    """

    def __init__(self, resident, plan: FaultPlan, entropy: int = 0) -> None:
        if resident.weight is None or not resident.shared_tables:
            raise SimulationError(
                "membership joins need oracle routing (shared weight matrix "
                "and repairable tables); got a protocol-mode resident"
            )
        self.resident = resident
        self.plan = plan
        self.stats = MembershipStats()
        self.rng = np.random.default_rng(
            np.random.SeedSequence([entropy, plan.seed, 1])
        )
        self.n_base = resident.n_base_sites
        #: joined site ids in application order
        self.joined: List[SiteId] = []
        self.events: List[JoinEvent] = []
        self._armed = False

    # -- lifecycle ----------------------------------------------------------

    def arm(self, t0: Time = 0.0, default_horizon: Time = 100.0) -> None:
        """Expand the plan's joins and schedule them (times relative to ``t0``).

        Also hooks the injector's rejoin transition when the run has one.
        """
        if self._armed:
            raise SimulationError("membership manager already armed")
        self._armed = True
        self.events = self._expand(default_horizon)
        sim = self.resident.sim
        for ev in self.events:
            sim.schedule_at(t0 + ev.time, lambda e=ev: self._apply_join(e))
        inj = self.resident.injector
        if inj is not None:
            inj.on_site_up = self._on_rejoin

    def _expand(self, default_horizon: Time) -> List[JoinEvent]:
        """Concrete events: explicit declarations first, then the seeded
        spec — ids assigned ``n_base, n_base+1, ...`` in declaration order."""
        events: List[JoinEvent] = []
        next_id = self.n_base
        for ev in self.plan.join_events:
            events.append(JoinEvent(ev.time, next_id, ev.links))
            next_id += 1
        spec = self.plan.joins
        if spec is not None and spec.n_sites > 0:
            horizon = spec.horizon if spec.horizon is not None else default_horizon
            lo, hi = spec.delay_range
            n_links = min(spec.links, self.n_base)
            for _ in range(spec.n_sites):
                # fixed draw order (time, peers, delays) — the determinism
                # contract tests replay this
                start = float(self.rng.uniform(0.0, horizon))
                peers = self.rng.choice(self.n_base, size=n_links, replace=False)
                delays = self.rng.uniform(lo, hi, size=n_links)
                links = tuple(
                    (int(p), float(d)) for p, d in sorted(zip(peers, delays))
                )
                events.append(JoinEvent(start, next_id, links))
                next_id += 1
        return events

    # -- join application ---------------------------------------------------

    def _apply_join(self, ev: JoinEvent) -> None:
        res = self.resident
        net = res.network
        W = res.weight
        j = ev.site
        if j < self.n_base or j in self.joined:
            raise SimulationError(f"membership: site {j} cannot join (base or already joined)")
        for peer, delay in ev.links:
            if peer >= self.n_base and peer not in self.joined:
                raise SimulationError(
                    f"membership: join of {j} links to {peer}, which has not joined yet"
                )
            net.add_link(j, peer, delay, res.config.link_throughput)
            W[j, peer] = delay
            W[peer, j] = delay
            self.stats.links_added += 1
        affected: set = set()
        for shared in res.shared_tables.values():
            rows = repair_after_join(shared, W, j)
            self.stats.repaired_rows += int(rows.size)
            affected.update(int(r) for r in rows)
        self.joined.append(j)
        self.stats.joins_applied += 1
        res.tracer.emit(res.sim.now, "membership.join", j, links=len(ev.links))
        self._count("membership.join")
        for sid in sorted(affected):
            site = net.site(sid)
            table = getattr(getattr(site, "routing", None), "table", None)
            invalidate = getattr(table, "invalidate", None)
            if invalidate is not None:
                invalidate()
            # the repair rewrote this row's next-hop arrays in place, so
            # any memoized routing answers (broadcast plans, distance
            # vectors) on the site are stale even before refresh_sphere
            site.drop_route_caches()
            refresh = getattr(site, "refresh_sphere", None)
            if refresh is not None:
                refresh()
                self.stats.spheres_refreshed += 1

    def _on_rejoin(self, sid: SiteId) -> None:
        """A churned site healed: count the handshake, refresh its sphere."""
        res = self.resident
        self.stats.rejoins += 1
        res.tracer.emit(res.sim.now, "membership.rejoin", sid)
        self._count("membership.rejoin")
        refresh = getattr(res.network.site(sid), "refresh_sphere", None)
        if refresh is not None:
            refresh()
            self.stats.spheres_refreshed += 1

    def _count(self, name: str) -> None:
        metrics = self.resident.metrics
        if metrics is not None and hasattr(metrics, "count_event"):
            metrics.count_event(name)

    # -- audit --------------------------------------------------------------

    def verify_converged(self) -> bool:
        """Do the incrementally-repaired tables equal a full rebuild?

        The chaos soak's membership-convergence gate: recompute
        :func:`~repro.routing.vectorized.phased_tables` from the final
        weight matrix and compare every array exactly.
        """
        for phases, shared in self.resident.shared_tables.items():
            fresh = phased_tables(self.resident.weight, phases)
            if not (
                np.array_equal(shared.dist, fresh.dist)
                and np.array_equal(shared.next_hop, fresh.next_hop)
                and np.array_equal(shared.hops, fresh.hops)
                and np.array_equal(shared.disc, fresh.disc)
            ):
                return False
        return True
