"""The Potential Computing Sphere (paper §6–§7).

PCS(k) is the set of sites within hop radius ``h`` of ``k``, computed once
at system initialization from the interrupted Bellman–Ford routing table:
a destination's ``discovered_phase`` equals its BFS hop distance, so
membership is simply ``discovered_phase <= h``.

The "communication control structure [...] allowing local broadcast" is the
unique-shortest-path tree implicit in the next-hop tables: to broadcast to a
target set, a site groups the targets by next hop and sends *one* message
per distinct hop carrying the sub-list; each relay repeats the split. The
cost is one transmission per tree edge traversed — this is what keeps RTDS
traffic independent of the network size (experiment E2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import RoutingError
from repro.core.messages import MSG_SPHERE
from repro.routing.table import RoutingTable
from repro.simnet.site import SiteBase
from repro.types import SiteId, Time


@dataclass(frozen=True)
class PCS:
    """The Potential Computing Sphere of one site."""

    root: SiteId
    h: int
    #: members, root excluded, sorted by (delay distance, id)
    members: Tuple[SiteId, ...]
    #: root's delay distance to each member (hop-bounded min delay)
    distance: Dict[SiteId, Time]
    #: BFS hop distance of each member
    hops: Dict[SiteId, int]

    def __contains__(self, sid: SiteId) -> bool:
        return sid == self.root or sid in self.distance

    def __len__(self) -> int:
        return len(self.members)

    def all_sites(self) -> List[SiteId]:
        """Members plus the root (the full sphere)."""
        return sorted((self.root, *self.members))

    def nearest(self, count: int) -> List[SiteId]:
        """The ``count`` members closest in delay (ACS size bounding)."""
        return list(self.members[:count])

    def radius(self) -> Time:
        """Max root-to-member delay (0 for an empty sphere)."""
        return max(self.distance.values(), default=0.0)


def build_pcs(table: RoutingTable, h: int) -> PCS:
    """Derive PCS membership from a finished routing table.

    Tables that know how to build their sphere sparsely (the lazy
    array-backed tables of :mod:`repro.routing.oracle`) are delegated to:
    their ``pcs(h)`` touches only sites within the radius instead of
    walking every table entry. Both paths produce identical spheres.
    """
    if h < 1:
        raise RoutingError(f"PCS radius h must be >= 1, got {h}")
    sparse = getattr(table, "pcs", None)
    if sparse is not None:
        return sparse(h)
    root = table.owner
    members = [d for d in table.within_phase(h) if d != root]
    distance = {d: table.entry(d).distance for d in members}
    hops = {d: table.entry(d).discovered_phase for d in members}
    members.sort(key=lambda d: (distance[d], d))
    return PCS(root=root, h=h, members=tuple(members), distance=distance, hops=hops)


def split_targets_by_hop(
    site: SiteBase, targets: List[SiteId]
) -> Dict[SiteId, List[SiteId]]:
    """Group broadcast targets by this site's next hop towards them."""
    groups: Dict[SiteId, List[SiteId]] = {}
    for t in targets:
        hop = site.next_hop.get(t)
        if hop is None:
            raise RoutingError(f"site {site.sid}: no route to broadcast target {t}")
        groups.setdefault(hop, []).append(t)
    return groups


def broadcast_plan(
    site: SiteBase, targets: List[SiteId]
) -> List[Tuple[SiteId, List[SiteId]]]:
    """The memoized hop-split: ``[(next hop, sorted target group), ...]``.

    A site broadcasts to the *same* target sets over and over (its ACS for
    every admission, the fixed relay splits below it in the tree), and the
    split is a pure function of the routing table — so it is computed once
    per distinct target tuple and cached on the site. Membership repairs
    rewrite next-hop rows in place, so they must call
    :meth:`~repro.simnet.site.SiteBase.drop_route_caches` on affected
    sites; the group lists are shared read-only (receivers copy).
    """
    key = tuple(targets)
    plan = site.bcast_plans.get(key)
    if plan is None:
        plan = [
            (hop, sorted(group))
            for hop, group in sorted(split_targets_by_hop(site, targets).items())
        ]
        site.bcast_plans[key] = plan
    return plan


def sphere_broadcast(
    site: SiteBase,
    targets: List[SiteId],
    inner_mtype: str,
    inner_payload: Dict[str, Any],
    size: float = 1.0,
) -> int:
    """Tree-broadcast ``inner`` to ``targets`` along shortest-path routes.

    Returns the number of first-hop transmissions. Relay handling lives in
    :func:`handle_sphere_message`, which every sphere-aware site wires to
    ``MSG_SPHERE``.
    """
    sent = 0
    for hop, group in broadcast_plan(site, targets):
        site.send_neighbor(
            hop,
            MSG_SPHERE,
            payload={
                "targets": group,
                "inner_mtype": inner_mtype,
                "inner_payload": inner_payload,
                "origin": site.sid,
            },
            size=size + len(group) * 0.0,  # payload size dominated by inner
        )
        sent += 1
    return sent


def handle_sphere_message(site: SiteBase, msg) -> Optional[Dict[str, Any]]:
    """Relay/unwrap one SPHERE envelope at ``site``.

    Forwards the remaining targets (splitting further as needed) and, when
    this site is itself a target, returns the inner ``(mtype, payload,
    origin)`` dict for local dispatch; otherwise returns ``None``.
    """
    payload = msg.payload
    targets: List[SiteId] = payload["targets"]
    inner_mtype = payload["inner_mtype"]
    inner_payload = payload["inner_payload"]
    origin = payload["origin"]

    if len(targets) == 1 and targets[0] == site.sid:
        # Leaf delivery (the common case at the broadcast tree's fringe):
        # nothing to relay, skip the split machinery entirely.
        return {"mtype": inner_mtype, "payload": inner_payload, "origin": origin}

    deliver_here = site.sid in targets
    rest = [t for t in targets if t != site.sid]
    if rest:
        for hop, group in broadcast_plan(site, rest):
            site.send_neighbor(
                hop,
                MSG_SPHERE,
                payload={
                    "targets": group,
                    "inner_mtype": inner_mtype,
                    "inner_payload": inner_payload,
                    "origin": origin,
                },
                size=msg.size,
            )
    if deliver_here:
        return {"mtype": inner_mtype, "payload": inner_payload, "origin": origin}
    return None
