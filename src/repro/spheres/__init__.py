"""Computing Spheres (paper §6–§8).

* :mod:`repro.spheres.pcs` — the Potential Computing Sphere: membership
  (hop radius ``h`` via routing-table discovery phases) and the
  shortest-path-tree *control structure* that implements "local broadcast"
  with one message per tree edge instead of one per member.
* :mod:`repro.spheres.acs` — initiator-side state of an Available Computing
  Sphere construction (collected surpluses/distances, completion tests) and
  the per-site lock.
* :mod:`repro.spheres.diameter` — delay diameter/radius of a sphere from the
  distance maps members report.
"""

from repro.spheres.pcs import PCS, build_pcs, sphere_broadcast, split_targets_by_hop
from repro.spheres.acs import AcsSession, SiteLock
from repro.spheres.diameter import sphere_diameter, sphere_radius

__all__ = [
    "PCS",
    "build_pcs",
    "sphere_broadcast",
    "split_targets_by_hop",
    "AcsSession",
    "SiteLock",
    "sphere_diameter",
    "sphere_radius",
]
