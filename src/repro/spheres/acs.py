"""Available Computing Sphere construction state (paper §8).

Initiator side: an :class:`AcsSession` tracks one job's protocol run —
which PCS members were asked, who answered with surplus (enrolled) or
refused, the collected distance maps, and the endorsement lists of the
validation phase.

Member side: a :class:`SiteLock` realises the paper's "mutual exclusion for
enrollment from initiator is guaranteed by a lock variable on each local
site". While locked, a site defers every plan mutation (its own job
arrivals, foreign enrollments in queue mode) so validation endorsements
remain truthful until EXECUTE/UNLOCK — see DESIGN.md "Lock semantics".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.errors import ProtocolError
from repro.types import JobId, LogicalProc, SiteId, Time


@dataclass
class EnrolledSite:
    """What one enrolled member reported."""

    site: SiteId
    surplus: float
    busyness: float
    speed: float
    #: member's routing distances to the other sphere sites
    distances: Dict[SiteId, Time]


class AcsSession:
    """Initiator-side state machine data for one distributed job."""

    #: phases in protocol order
    ENROLLING = "enrolling"
    MAPPING = "mapping"
    VALIDATING = "validating"
    FINISHED = "finished"

    def __init__(self, job: JobId, initiator: SiteId, asked: List[SiteId]) -> None:
        self.job = job
        self.initiator = initiator
        self.asked: Tuple[SiteId, ...] = tuple(sorted(asked))
        self.phase = self.ENROLLING
        self.enrolled: Dict[SiteId, EnrolledSite] = {}
        self.refused: Set[SiteId] = set()
        self.endorsements: Dict[SiteId, List[LogicalProc]] = {}
        #: filled by the mapper step
        self.trial_mapping = None
        self.adjustment = None
        #: initiator's own cached validation slots (proc -> reservations)
        self.own_slots: Dict[LogicalProc, list] = {}
        self.started_at: Optional[Time] = None
        #: the job context (dag, deadline, arrival) — set by the initiator
        self.ctx: Any = None

    # -- enrollment --------------------------------------------------------

    def record_ack(self, info: EnrolledSite) -> None:
        if self.phase != self.ENROLLING:
            raise ProtocolError(
                f"job {self.job}: ENROLL_ACK from {info.site} in phase {self.phase}"
            )
        if info.site not in self.asked:
            raise ProtocolError(f"job {self.job}: unsolicited ack from {info.site}")
        self.enrolled[info.site] = info

    def record_refusal(self, site: SiteId) -> None:
        if self.phase != self.ENROLLING:
            raise ProtocolError(
                f"job {self.job}: ENROLL_REFUSE from {site} in phase {self.phase}"
            )
        self.refused.add(site)

    def enrollment_complete(self) -> bool:
        return len(self.enrolled) + len(self.refused) >= len(self.asked)

    def acs_members(self) -> List[SiteId]:
        """Enrolled members (initiator excluded), deterministic order."""
        return sorted(self.enrolled)

    # -- validation ----------------------------------------------------------

    def record_endorsement(self, site: SiteId, procs: List[LogicalProc]) -> None:
        if self.phase != self.VALIDATING:
            raise ProtocolError(
                f"job {self.job}: VALIDATE_ACK from {site} in phase {self.phase}"
            )
        if site != self.initiator and site not in self.enrolled:
            raise ProtocolError(f"job {self.job}: endorsement from non-member {site}")
        self.endorsements[site] = list(procs)

    def validation_complete(self) -> bool:
        expected = set(self.enrolled) | {self.initiator}
        return expected.issubset(self.endorsements)


class SiteLock:
    """The per-site lock variable with a deferral queue.

    ``owner`` is ``(initiator, job)`` while held. Deferred items are opaque
    thunks replayed in FIFO order by the owner site when the lock releases.
    """

    def __init__(self, site: SiteId) -> None:
        self.site = site
        self.owner: Optional[Tuple[SiteId, JobId]] = None
        self.deferred: Deque = deque()

    @property
    def locked(self) -> bool:
        return self.owner is not None

    def acquire(self, initiator: SiteId, job: JobId) -> None:
        if self.owner is not None:
            raise ProtocolError(
                f"site {self.site}: lock already held by {self.owner}, "
                f"cannot lock for ({initiator}, {job})"
            )
        self.owner = (initiator, job)

    def release(self, initiator: SiteId, job: JobId) -> None:
        if self.owner != (initiator, job):
            raise ProtocolError(
                f"site {self.site}: release by ({initiator}, {job}) "
                f"but lock held by {self.owner}"
            )
        self.owner = None

    def held_by(self, initiator: SiteId, job: JobId) -> bool:
        return self.owner == (initiator, job)

    def defer(self, thunk) -> None:
        self.deferred.append(thunk)
