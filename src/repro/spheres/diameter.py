"""Delay diameter/radius of a sphere from distributed knowledge.

The Mapper over-estimates every inter-processor communication by the
*computed diameter (in terms of delay) of the current ACS* (§12). The
initiator assembles that diameter from what it has: its own routing table
(distances k→j) and the distance maps the enrolled members reported in
their ENROLL_ACKs (distances j→j'). A missing pair — possible only through
float-edge phase effects — falls back to the triangle upper bound via the
initiator, which keeps the estimate an over-estimate (safe direction).
"""

from __future__ import annotations

from typing import List, Mapping, Optional

from repro.types import SiteId, Time


def sphere_radius(initiator_dist: Mapping[SiteId, Time], members: List[SiteId]) -> Time:
    """Max delay from the initiator to any member (0 if no members)."""
    return max((initiator_dist[m] for m in members if m in initiator_dist), default=0.0)


def sphere_diameter(
    initiator: SiteId,
    initiator_dist: Mapping[SiteId, Time],
    member_dists: Mapping[SiteId, Mapping[SiteId, Time]],
) -> Time:
    """Max pairwise delay over the sphere ``{initiator} ∪ members``.

    ``member_dists[j]`` is the map site ``j`` reported. Missing entries use
    the ``via-initiator`` triangle bound ``d(k,i) + d(k,j)``.
    """
    members = sorted(member_dists)
    best = 0.0
    # initiator <-> member legs
    for m in members:
        d = initiator_dist.get(m)
        if d is None:
            d = member_dists[m].get(initiator, 0.0)
        best = max(best, d)
    # member <-> member legs
    for i_idx, i in enumerate(members):
        for j in members[i_idx + 1 :]:
            d: Optional[Time] = member_dists[i].get(j)
            if d is None:
                d = member_dists[j].get(i)
            if d is None:
                d = initiator_dist.get(i, 0.0) + initiator_dist.get(j, 0.0)
            best = max(best, d)
    return best
