"""Arrival processes.

Jobs are *sporadic*: they arrive at any time on any site. We model each
site's arrival stream as a Poisson process (exponential inter-arrivals),
the standard model for open real-time workloads, vectorised with numpy.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.types import SiteId, Time


def poisson_arrivals(
    rng: np.random.Generator,
    rate: float,
    start: Time,
    end: Time,
) -> np.ndarray:
    """Arrival times of a Poisson process with ``rate`` on ``[start, end)``.

    Vectorised: draws ~N(expected + 6·sqrt) exponentials at once and tops up
    in the (rare) case the batch falls short.
    """
    if rate < 0:
        raise WorkloadError(f"rate must be >= 0, got {rate}")
    if end <= start:
        raise WorkloadError(f"empty arrival window [{start}, {end})")
    if rate == 0:
        return np.empty(0, dtype=float)
    expect = rate * (end - start)
    batch = int(expect + 6.0 * np.sqrt(expect) + 16)
    gaps = rng.exponential(1.0 / rate, size=batch)
    times = start + np.cumsum(gaps)
    while times.size and times[-1] < end:
        more = rng.exponential(1.0 / rate, size=batch)
        times = np.concatenate([times, times[-1] + np.cumsum(more)])
    return times[times < end]


def bursty_arrivals(
    rng: np.random.Generator,
    rate_on: float,
    rate_off: float,
    period: Time,
    duty: float,
    start: Time,
    end: Time,
) -> np.ndarray:
    """Two-state (on/off) modulated Poisson process — bursty sporadic jobs.

    Alternates ``duty × period`` at ``rate_on`` with the remainder at
    ``rate_off``. Models the arrival bursts (alarm showers, frame batches)
    that stress admission control far more than a smooth stream with the
    same mean rate.
    """
    if period <= 0 or not 0.0 < duty < 1.0:
        raise WorkloadError(f"need period > 0 and duty in (0,1), got {period}, {duty}")
    if rate_on < 0 or rate_off < 0:
        raise WorkloadError("rates must be >= 0")
    if end <= start:
        raise WorkloadError(f"empty arrival window [{start}, {end})")
    chunks = []
    t = start
    while t < end:
        on_end = min(t + duty * period, end)
        if rate_on > 0 and on_end > t:
            chunks.append(poisson_arrivals(rng, rate_on, t, on_end))
        off_end = min(t + period, end)
        if rate_off > 0 and off_end > on_end:
            chunks.append(poisson_arrivals(rng, rate_off, on_end, off_end))
        t += period
    if not chunks:
        return np.empty(0, dtype=float)
    return np.sort(np.concatenate(chunks))


def per_site_arrivals(
    rng: np.random.Generator,
    n_sites: int,
    total_rate: float,
    start: Time,
    end: Time,
    hot_fraction: float = 0.0,
    hot_sites: int = 0,
) -> List[Tuple[Time, SiteId]]:
    """Merged, time-sorted (arrival, origin) pairs across all sites.

    ``total_rate`` is the aggregate arrival rate; by default it splits
    uniformly. With ``hot_fraction`` > 0, that fraction of the rate
    concentrates on the first ``hot_sites`` sites — the skewed-arrival
    pattern where distribution matters most (hot sites overload and must
    offload into their spheres).
    """
    if n_sites < 1:
        raise WorkloadError("need at least one site")
    if not 0.0 <= hot_fraction <= 1.0:
        raise WorkloadError(f"hot_fraction must be in [0,1], got {hot_fraction}")
    if hot_fraction > 0 and not 0 < hot_sites <= n_sites:
        raise WorkloadError(f"hot_sites must be in (0, {n_sites}], got {hot_sites}")

    rates = np.full(n_sites, total_rate / n_sites)
    if hot_fraction > 0:
        hot_each = total_rate * hot_fraction / hot_sites
        cold_each = total_rate * (1 - hot_fraction) / max(1, n_sites - hot_sites)
        rates[:] = cold_each
        rates[:hot_sites] = hot_each

    out: List[Tuple[Time, SiteId]] = []
    for sid in range(n_sites):
        for t in poisson_arrivals(rng, float(rates[sid]), start, end):
            out.append((float(t), sid))
    out.sort(key=lambda x: (x[0], x[1]))
    return out
