"""Arrival processes.

Jobs are *sporadic*: they arrive at any time on any site. We model each
site's arrival stream as a Poisson process (exponential inter-arrivals),
the standard model for open real-time workloads, vectorised with numpy.

Open-loop processes (E12)
-------------------------

The batch runner thinks in fixed job counts; the admission service
(:mod:`repro.service`) thinks in **rate × duration**: a first-class
:class:`ArrivalProcess` describes *how* jobs arrive, and the window
``[start, end)`` — not ``n_jobs`` — bounds how many. Three families:

* :class:`PoissonProcess` — the memoryless baseline (constant rate);
* :class:`MMPPProcess` — a cyclic-phase Markov-modulated Poisson process
  (exponential sojourns per phase, each phase its own rate) — the bursty
  sporadic-release model of Dong & Liu (arXiv:1808.00017) at workload
  granularity;
* :class:`DiurnalProcess` — a sinusoidal rate curve that integrates to a
  requested *daily volume*, the shape sustained services actually see.

All are frozen dataclasses (picklable across pool workers), draw only
through the caller's seeded generator, and share the exact spec grammar of
:func:`parse_arrival_spec` (``"poisson:2.5"``, ``"mmpp:0.5,8@20,5"``,
``"diurnal:500@100@0.8"``) so the soak CLI and campaign configs name them
declaratively.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.types import SiteId, Time


def poisson_arrivals(
    rng: np.random.Generator,
    rate: float,
    start: Time,
    end: Time,
) -> np.ndarray:
    """Arrival times of a Poisson process with ``rate`` on ``[start, end)``.

    Vectorised: draws ~N(expected + 6·sqrt) exponentials at once and tops up
    in the (rare) case the batch falls short.
    """
    if rate < 0:
        raise WorkloadError(f"rate must be >= 0, got {rate}")
    if end <= start:
        raise WorkloadError(f"empty arrival window [{start}, {end})")
    if rate == 0:
        return np.empty(0, dtype=float)
    expect = rate * (end - start)
    batch = int(expect + 6.0 * np.sqrt(expect) + 16)
    gaps = rng.exponential(1.0 / rate, size=batch)
    times = start + np.cumsum(gaps)
    while times.size and times[-1] < end:
        more = rng.exponential(1.0 / rate, size=batch)
        times = np.concatenate([times, times[-1] + np.cumsum(more)])
    return times[times < end]


def bursty_arrivals(
    rng: np.random.Generator,
    rate_on: float,
    rate_off: float,
    period: Time,
    duty: float,
    start: Time,
    end: Time,
) -> np.ndarray:
    """Two-state (on/off) modulated Poisson process — bursty sporadic jobs.

    Alternates ``duty × period`` at ``rate_on`` with the remainder at
    ``rate_off``. Models the arrival bursts (alarm showers, frame batches)
    that stress admission control far more than a smooth stream with the
    same mean rate.
    """
    if period <= 0 or not 0.0 < duty < 1.0:
        raise WorkloadError(f"need period > 0 and duty in (0,1), got {period}, {duty}")
    if rate_on < 0 or rate_off < 0:
        raise WorkloadError("rates must be >= 0")
    if end <= start:
        raise WorkloadError(f"empty arrival window [{start}, {end})")
    chunks = []
    t = start
    while t < end:
        on_end = min(t + duty * period, end)
        if rate_on > 0 and on_end > t:
            chunks.append(poisson_arrivals(rng, rate_on, t, on_end))
        off_end = min(t + period, end)
        if rate_off > 0 and off_end > on_end:
            chunks.append(poisson_arrivals(rng, rate_off, on_end, off_end))
        t += period
    if not chunks:
        return np.empty(0, dtype=float)
    return np.sort(np.concatenate(chunks))


def per_site_arrivals(
    rng: np.random.Generator,
    n_sites: int,
    total_rate: float,
    start: Time,
    end: Time,
    hot_fraction: float = 0.0,
    hot_sites: int = 0,
) -> List[Tuple[Time, SiteId]]:
    """Merged, time-sorted (arrival, origin) pairs across all sites.

    ``total_rate`` is the aggregate arrival rate; by default it splits
    uniformly. With ``hot_fraction`` > 0, that fraction of the rate
    concentrates on the first ``hot_sites`` sites — the skewed-arrival
    pattern where distribution matters most (hot sites overload and must
    offload into their spheres).
    """
    if n_sites < 1:
        raise WorkloadError("need at least one site")
    if not 0.0 <= hot_fraction <= 1.0:
        raise WorkloadError(f"hot_fraction must be in [0,1], got {hot_fraction}")
    if hot_fraction > 0 and not 0 < hot_sites <= n_sites:
        raise WorkloadError(f"hot_sites must be in (0, {n_sites}], got {hot_sites}")

    rates = np.full(n_sites, total_rate / n_sites)
    if hot_fraction > 0:
        hot_each = total_rate * hot_fraction / hot_sites
        cold_each = total_rate * (1 - hot_fraction) / max(1, n_sites - hot_sites)
        rates[:] = cold_each
        rates[:hot_sites] = hot_each

    out: List[Tuple[Time, SiteId]] = []
    for sid in range(n_sites):
        for t in poisson_arrivals(rng, float(rates[sid]), start, end):
            out.append((float(t), sid))
    out.sort(key=lambda x: (x[0], x[1]))
    return out


# -- open-loop arrival processes (E12) ---------------------------------------


@dataclass(frozen=True)
class PoissonProcess:
    """Constant-rate Poisson arrivals: the open-loop baseline."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise WorkloadError(f"poisson rate must be > 0, got {self.rate}")

    def mean_rate(self) -> float:
        """Long-run arrivals per time unit."""
        return self.rate

    def rate_at(self, t: Time) -> float:
        """Instantaneous rate (constant)."""
        return self.rate

    def times(self, rng: np.random.Generator, start: Time, end: Time) -> np.ndarray:
        """Sorted arrival times on ``[start, end)``."""
        return poisson_arrivals(rng, self.rate, start, end)


@dataclass(frozen=True)
class MMPPProcess:
    """Cyclic-phase Markov-modulated Poisson process.

    The process visits its phases in cyclic order; each visit to phase
    ``i`` lasts an exponential sojourn with mean ``sojourns[i]`` during
    which arrivals are Poisson at ``rates[i]``. Exponential sojourns make
    the (phase, residual) pair Markov, so this is a proper MMPP with a
    cyclic transition structure — two phases give the classic bursty
    on/off interrupted-Poisson shape.

    Determinism: phase-switch times are drawn from a child generator
    spawned off the caller's seed *before* any arrival draw, so the phase
    schedule for a window is a pure function of (seed, window) no matter
    how many arrivals each phase produces.
    """

    rates: Tuple[float, ...]
    sojourns: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.rates) < 2 or len(self.rates) != len(self.sojourns):
            raise WorkloadError(
                f"mmpp needs >= 2 phases with one sojourn each, got rates="
                f"{self.rates}, sojourns={self.sojourns}"
            )
        if any(r < 0 for r in self.rates) or all(r == 0 for r in self.rates):
            raise WorkloadError(f"mmpp rates must be >= 0 with one > 0, got {self.rates}")
        if any(s <= 0 for s in self.sojourns):
            raise WorkloadError(f"mmpp sojourns must be > 0, got {self.sojourns}")

    def mean_rate(self) -> float:
        """Sojourn-weighted mean rate (the long-run arrivals/time)."""
        weight = sum(self.sojourns)
        return sum(r * s for r, s in zip(self.rates, self.sojourns)) / weight

    def phase_schedule(
        self, rng: np.random.Generator, start: Time, end: Time
    ) -> List[Tuple[Time, Time, int]]:
        """The ``(t0, t1, phase)`` intervals covering ``[start, end)``.

        Consumes exactly one ``integers`` draw from ``rng`` (the child
        seed); all sojourn draws come from the child.
        """
        child = np.random.default_rng(int(rng.integers(2**63)))
        out: List[Tuple[Time, Time, int]] = []
        t = start
        phase = 0
        k = len(self.rates)
        while t < end:
            stay = float(child.exponential(self.sojourns[phase]))
            t1 = min(t + stay, end)
            out.append((t, t1, phase))
            t = t + stay
            phase = (phase + 1) % k
        return out

    def times(self, rng: np.random.Generator, start: Time, end: Time) -> np.ndarray:
        """Sorted arrival times on ``[start, end)``."""
        if end <= start:
            raise WorkloadError(f"empty arrival window [{start}, {end})")
        chunks = [
            poisson_arrivals(rng, self.rates[phase], t0, t1)
            for t0, t1, phase in self.phase_schedule(rng, start, end)
            if self.rates[phase] > 0 and t1 > t0
        ]
        if not chunks:
            return np.empty(0, dtype=float)
        return np.sort(np.concatenate(chunks))


@dataclass(frozen=True)
class DiurnalProcess:
    """Sinusoidal daily rate curve integrating to ``daily_volume`` jobs.

    ``rate(t) = (daily_volume / day_length) * (1 + amplitude *
    sin(2π t / day_length))`` — the sine integrates to zero over any whole
    day, so the expected volume per day is exactly ``daily_volume``
    (pinned by the Hypothesis property suite). ``amplitude`` in [0, 1)
    keeps the rate strictly positive; 0 degenerates to Poisson.

    Sampling uses Lewis–Shedler thinning against the peak rate: exact for
    a non-homogeneous Poisson process, deterministic under a fixed seed.
    """

    daily_volume: float
    day_length: float = 24.0
    amplitude: float = 0.8

    def __post_init__(self) -> None:
        if self.daily_volume <= 0 or self.day_length <= 0:
            raise WorkloadError(
                f"need daily_volume > 0 and day_length > 0, got "
                f"{self.daily_volume}, {self.day_length}"
            )
        if not 0.0 <= self.amplitude < 1.0:
            raise WorkloadError(f"amplitude must be in [0, 1), got {self.amplitude}")

    def mean_rate(self) -> float:
        """Arrivals per time unit averaged over one day."""
        return self.daily_volume / self.day_length

    def rate_at(self, t: Time) -> float:
        """Instantaneous rate of the diurnal curve at ``t``."""
        base = self.daily_volume / self.day_length
        return base * (1.0 + self.amplitude * math.sin(2.0 * math.pi * t / self.day_length))

    def times(self, rng: np.random.Generator, start: Time, end: Time) -> np.ndarray:
        """Sorted arrival times on ``[start, end)`` (thinning)."""
        if end <= start:
            raise WorkloadError(f"empty arrival window [{start}, {end})")
        peak = self.mean_rate() * (1.0 + self.amplitude)
        candidates = poisson_arrivals(rng, peak, start, end)
        if candidates.size == 0:
            return candidates
        base = self.mean_rate()
        rates = base * (
            1.0 + self.amplitude * np.sin(2.0 * np.pi * candidates / self.day_length)
        )
        accept = rng.random(candidates.size) * peak <= rates
        return candidates[accept]


def parse_arrival_spec(spec: str):
    """Parse a declarative arrival-process spec into a process object.

    Grammar (groups ``@``-separated, values ``,``-separated)::

        poisson:RATE                 e.g. "poisson:2.5"
        mmpp:R1,R2[,...]@S1,S2[,...] e.g. "mmpp:0.5,8@20,5"
        diurnal:VOLUME@DAY[@AMP]     e.g. "diurnal:500@100@0.8"

    Raises :class:`~repro.errors.WorkloadError` on anything malformed —
    campaign configs validate specs before shipping cells to workers.
    """
    if not isinstance(spec, str) or ":" not in spec:
        raise WorkloadError(
            f"arrival spec must look like 'poisson:RATE', 'mmpp:RATES@SOJOURNS' "
            f"or 'diurnal:VOLUME@DAY[@AMP]', got {spec!r}"
        )
    kind, _, body = spec.partition(":")
    try:
        if kind == "poisson":
            return PoissonProcess(rate=float(body))
        if kind == "mmpp":
            rates_s, _, sojourns_s = body.partition("@")
            if not sojourns_s:
                raise WorkloadError(f"mmpp spec needs RATES@SOJOURNS, got {spec!r}")
            rates = tuple(float(x) for x in rates_s.split(","))
            sojourns = tuple(float(x) for x in sojourns_s.split(","))
            return MMPPProcess(rates=rates, sojourns=sojourns)
        if kind == "diurnal":
            parts = body.split("@")
            if len(parts) not in (2, 3):
                raise WorkloadError(f"diurnal spec needs VOLUME@DAY[@AMP], got {spec!r}")
            return DiurnalProcess(
                daily_volume=float(parts[0]),
                day_length=float(parts[1]),
                amplitude=float(parts[2]) if len(parts) == 3 else 0.8,
            )
    except ValueError:
        raise WorkloadError(f"malformed arrival spec {spec!r}") from None
    raise WorkloadError(
        f"unknown arrival process {kind!r} in {spec!r}; known: poisson, mmpp, diurnal"
    )
