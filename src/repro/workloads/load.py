"""Offered-load calibration.

Experiments sweep *offered load* ρ — the fraction of the network's
aggregate computing capacity the workload requests:

    ρ = λ_total · E[work per job] / (Σ_k speed_k)

Calibrating λ from ρ (instead of sweeping raw rates) makes guarantee-ratio
curves comparable across network sizes and DAG families — the x-axes of
experiments E1–E3.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import WorkloadError


def offered_load(
    total_rate: float, mean_work: float, capacities: Sequence[float]
) -> float:
    """ρ for a given aggregate arrival rate."""
    cap = float(sum(capacities))
    if cap <= 0:
        raise WorkloadError("total capacity must be > 0")
    if total_rate < 0 or mean_work <= 0:
        raise WorkloadError(
            f"need rate >= 0 and mean_work > 0, got {total_rate}, {mean_work}"
        )
    return total_rate * mean_work / cap


def calibrate_rate(
    rho: float, mean_work: float, capacities: Sequence[float]
) -> float:
    """Aggregate arrival rate achieving offered load ``rho``."""
    if rho < 0:
        raise WorkloadError(f"rho must be >= 0, got {rho}")
    cap = float(sum(capacities))
    if cap <= 0 or mean_work <= 0:
        raise WorkloadError("capacity and mean work must be > 0")
    return rho * cap / mean_work


def expected_jobs(rho: float, mean_work: float, capacities: Sequence[float], duration: float) -> float:
    """Expected number of arrivals over ``duration`` at load ``rho``."""
    return calibrate_rate(rho, mean_work, capacities) * duration
