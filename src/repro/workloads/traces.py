"""Trace-driven workflow workloads (E11).

The synthetic mixes in :mod:`repro.workloads.scenarios` draw task
runtimes uniformly — fine for protocol stress, but real workflow
schedulers are evaluated against *workflow-shaped* job streams whose
runtimes follow heavy-tailed empirical distributions (Beránek et al.,
arXiv:2204.07211). This module replays such streams: each named **trace**
pairs a layered fan-out structure from :mod:`repro.graphs.workflows`
(Montage mosaicking, Epigenomics sequencing) with per-task-*type*
lognormal runtime models whose relative magnitudes follow the published
Pegasus workflow profiles (projection/co-add heavy and diff-fit light for
Montage; the map stage dominating Epigenomics lanes).

Usage — exactly like any other DAG factory::

    factory = trace_dag_factory("montage")
    dag = factory(np.random.default_rng(0))

or declaratively through the experiment runner::

    ExperimentConfig(workload="trace:epigenomics")

Determinism: every draw flows through the caller's generator, so a seeded
workload replays bit-for-bit; the structures themselves are the documented
task-id layouts of the :mod:`repro.graphs.workflows` generators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.graphs.dag import Dag, Task
from repro.graphs.workflows import epigenomics_dag, montage_dag

DagFactory = Callable[[np.random.Generator], Dag]

#: minimum task runtime after sampling (keeps complexities strictly positive)
_MIN_RUNTIME = 0.05


@dataclass(frozen=True)
class RuntimeModel:
    """Lognormal runtime distribution of one task type.

    ``mean`` is the distribution mean in complexity units (comparable to
    the synthetic mixes' c ∈ [1, 8]); ``cv`` the coefficient of variation
    (heavy-tailed empirical runtimes sit around 0.3–0.6 in the published
    workflow profiles).
    """

    mean: float
    cv: float

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` runtimes (clamped to a small positive floor)."""
        sigma2 = float(np.log1p(self.cv * self.cv))
        mu = float(np.log(self.mean)) - sigma2 / 2.0
        draws = rng.lognormal(mean=mu, sigma=float(np.sqrt(sigma2)), size=size)
        return np.maximum(draws, _MIN_RUNTIME)


#: Montage task types, in the id-layout order of
#: :func:`repro.graphs.workflows.montage_dag`: projections, pairwise
#: diff-fits, the background model, per-tile corrections, the final co-add.
MONTAGE_RUNTIMES: Dict[str, RuntimeModel] = {
    "project": RuntimeModel(mean=6.0, cv=0.4),
    "diff": RuntimeModel(mean=1.0, cv=0.5),
    "bgmodel": RuntimeModel(mean=3.0, cv=0.3),
    "bgcorrect": RuntimeModel(mean=1.5, cv=0.4),
    "coadd": RuntimeModel(mean=8.0, cv=0.3),
}

#: Epigenomics per-stage types for the 4-stage reference lanes of
#: :func:`repro.graphs.workflows.epigenomics_dag`, plus split/merge/final.
EPIGENOMICS_RUNTIMES: Dict[str, RuntimeModel] = {
    "split": RuntimeModel(mean=2.0, cv=0.3),
    "filter": RuntimeModel(mean=3.0, cv=0.4),
    "sol2sanger": RuntimeModel(mean=1.5, cv=0.4),
    "fastq2bfq": RuntimeModel(mean=1.0, cv=0.4),
    "map": RuntimeModel(mean=10.0, cv=0.6),
    "merge": RuntimeModel(mean=4.0, cv=0.3),
    "final": RuntimeModel(mean=2.5, cv=0.3),
}

#: the per-lane stage sequence (id layout of ``epigenomics_dag``)
EPIGENOMICS_STAGES: Tuple[str, ...] = ("filter", "sol2sanger", "fastq2bfq", "map")


def montage_task_types(tiles: int) -> List[str]:
    """Task type per id of ``montage_dag(tiles)`` (its documented layout)."""
    n_diff = tiles if tiles > 2 else 1
    return (
        ["project"] * tiles
        + ["diff"] * n_diff
        + ["bgmodel"]
        + ["bgcorrect"] * tiles
        + ["coadd"]
    )


def epigenomics_task_types(lanes: int) -> List[str]:
    """Task type per id of ``epigenomics_dag(lanes)`` (its documented layout)."""
    return ["split"] + list(EPIGENOMICS_STAGES) * lanes + ["merge", "final"]


def _retyped(dag: Dag, types: List[str], runtimes: Dict[str, RuntimeModel], rng) -> Dag:
    """Rebuild ``dag`` with per-type empirical runtimes (same structure)."""
    order = sorted(dag, key=lambda t: t)
    if len(order) != len(types):
        raise WorkloadError(
            f"trace layout mismatch for {dag.name}: {len(order)} tasks, {len(types)} types"
        )
    # One vectorized draw per type keeps the RNG stream compact and stable.
    by_type: Dict[str, List[int]] = {}
    for tid, ttype in zip(order, types):
        by_type.setdefault(ttype, []).append(tid)
    runtime: Dict[int, float] = {}
    for ttype in sorted(by_type):
        tids = by_type[ttype]
        draws = runtimes[ttype].sample(rng, len(tids))
        for tid, c in zip(tids, draws):
            runtime[tid] = float(c)
    tasks = [Task(t, runtime[t], dag.task(t).data_volume) for t in order]
    return Dag(tasks, dag.edges, name=dag.name)


def montage_trace_dag(rng: np.random.Generator, tiles: Tuple[int, int] = (4, 10)) -> Dag:
    """One Montage job: structure size drawn from ``tiles``, typed runtimes."""
    t = int(rng.integers(tiles[0], tiles[1] + 1))
    dag = montage_dag(t, rng)
    return _retyped(dag, montage_task_types(t), MONTAGE_RUNTIMES, rng)


def epigenomics_trace_dag(rng: np.random.Generator, lanes: Tuple[int, int] = (3, 8)) -> Dag:
    """One Epigenomics job: lane count drawn from ``lanes``, typed runtimes."""
    n_lanes = int(rng.integers(lanes[0], lanes[1] + 1))
    dag = epigenomics_dag(n_lanes, stages=len(EPIGENOMICS_STAGES), rng=rng)
    return _retyped(dag, epigenomics_task_types(n_lanes), EPIGENOMICS_RUNTIMES, rng)


#: the trace catalogue: name -> DagFactory
TRACES: Dict[str, DagFactory] = {
    "montage": montage_trace_dag,
    "epigenomics": epigenomics_trace_dag,
}


def _grid_mix(rng: np.random.Generator) -> Dag:
    """A 50/50 Montage/Epigenomics stream (a mixed grid-site trace)."""
    if int(rng.integers(2)) == 0:
        return montage_trace_dag(rng)
    return epigenomics_trace_dag(rng)


TRACES["grid-mix"] = _grid_mix


def trace_names() -> List[str]:
    """Sorted names of the available workflow traces."""
    return sorted(TRACES)


def trace_dag_factory(name: str) -> DagFactory:
    """The DAG factory replaying the named workflow trace."""
    try:
        return TRACES[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workflow trace {name!r}; known: {trace_names()}"
        ) from None


def parse_workload(spec: str) -> Tuple[str, str]:
    """Split a workload spec into ``(kind, name)``.

    ``"synthetic"`` → ``("synthetic", "")``; ``"trace:montage"`` →
    ``("trace", "montage")``. Unknown kinds or trace names raise
    :class:`~repro.errors.WorkloadError` — validation happens here so
    :class:`~repro.experiments.runner.ExperimentConfig` can reject bad
    specs at construction time, before a campaign ships them to workers.
    """
    if spec == "synthetic":
        return ("synthetic", "")
    kind, sep, name = spec.partition(":")
    if kind != "trace" or not sep:
        raise WorkloadError(
            f"unknown workload spec {spec!r}; expected 'synthetic' or 'trace:<name>'"
        )
    if name not in TRACES:
        raise WorkloadError(f"unknown workflow trace {name!r}; known: {trace_names()}")
    return ("trace", name)
