"""Job specifications and workload containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List

from repro.errors import WorkloadError
from repro.graphs.dag import Dag
from repro.types import JobId, SiteId, Time


@dataclass(frozen=True)
class JobSpec:
    """One sporadic job instance to be injected into a simulation.

    ``deadline`` is absolute (simulation time), per the paper's model of a
    per-DAG deadline ``d``.
    """

    job: JobId
    dag: Dag
    origin: SiteId
    arrival: Time
    deadline: Time

    def __post_init__(self) -> None:
        if self.deadline <= self.arrival:
            raise WorkloadError(
                f"job {self.job}: deadline {self.deadline} <= arrival {self.arrival}"
            )

    @property
    def relative_deadline(self) -> Time:
        return self.deadline - self.arrival


@dataclass
class Workload:
    """An ordered batch of job specs plus bookkeeping for reports."""

    jobs: List[JobSpec] = field(default_factory=list)

    def __iter__(self) -> Iterator[JobSpec]:
        return iter(sorted(self.jobs, key=lambda j: (j.arrival, j.job)))

    def __len__(self) -> int:
        return len(self.jobs)

    def add(self, spec: JobSpec) -> None:
        self.jobs.append(spec)

    def horizon(self) -> Time:
        """Last arrival time (0 for an empty workload)."""
        return max((j.arrival for j in self.jobs), default=0.0)

    def last_deadline(self) -> Time:
        return max((j.deadline for j in self.jobs), default=0.0)

    def total_work(self) -> float:
        return sum(j.dag.total_complexity() for j in self.jobs)

    def mean_tasks(self) -> float:
        if not self.jobs:
            return 0.0
        return sum(len(j.dag) for j in self.jobs) / len(self.jobs)
