"""Open-loop job sources: rate × duration instead of fixed ``n_jobs``.

The batch generator (:func:`repro.workloads.scenarios.generate_workload`)
draws a whole workload up front — fine for a 300-unit experiment, hopeless
for a soak that pushes 10^5–10^6 jobs through a resident network. This
module provides the *streaming* counterpart:

* :class:`OpenLoopSpec` — everything needed to generate jobs
  deterministically from an :class:`~repro.workloads.arrivals` process;
* :func:`open_loop_jobs` — an **unbounded** iterator of
  :class:`~repro.workloads.jobs.JobSpec`, generated window-by-window so
  memory stays flat no matter how long the stream runs;
* :func:`open_loop_workload` — the same stream truncated to a duration and
  materialised as a batch :class:`~repro.workloads.jobs.Workload`.

The two share one code path, so a rate-shaped service run replayed as a
fixed job list through the batch runner sees the *identical* job sequence
— the service ≡ batch differential lockdown relies on this.

Determinism contract: all draws (arrival times, origins, DAGs, deadlines)
come from one ``default_rng(spec.seed)`` stream consumed in window order,
and the window width is a pure function of the spec — so job ``k`` is a
pure function of the spec, regardless of how far the stream is consumed
or on which worker it runs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Optional, Protocol, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.types import Time
from repro.workloads.deadlines import assign_deadline
from repro.workloads.jobs import JobSpec, Workload
from repro.workloads.load import calibrate_rate
from repro.workloads.scenarios import DagFactory, mixed_dag_factory


class ArrivalProcess(Protocol):
    """Duck type of the open-loop processes in :mod:`repro.workloads.arrivals`."""

    def mean_rate(self) -> float: ...

    def times(self, rng: np.random.Generator, start: Time, end: Time) -> np.ndarray: ...


#: expected jobs per generation window when ``OpenLoopSpec.window`` is auto.
_JOBS_PER_WINDOW = 512.0


@dataclass
class OpenLoopSpec:
    """Everything needed to generate an open-loop job stream deterministically.

    ``process`` is any :class:`ArrivalProcess` (Poisson / MMPP / diurnal);
    jobs land on a uniformly random origin site. ``window`` is the
    generation chunk in simulation-time units — 0 (the default) derives it
    from the process's mean rate so each chunk holds ~500 jobs.
    """

    n_sites: int
    process: ArrivalProcess
    laxity_factor: float = 3.0
    start: Time = 0.0
    dag_factory: Optional[DagFactory] = None
    dag_size: str = "small"
    deadline_jitter: float = 0.2
    window: Time = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_sites < 1:
            raise WorkloadError("n_sites must be >= 1")
        if self.window < 0:
            raise WorkloadError(f"window must be >= 0, got {self.window}")
        if self.process.mean_rate() <= 0:
            raise WorkloadError("arrival process must have mean_rate > 0")

    def effective_window(self) -> Time:
        """The generation window actually used (auto-derived when 0)."""
        if self.window > 0:
            return self.window
        return max(1.0, _JOBS_PER_WINDOW / self.process.mean_rate())


def open_loop_jobs(spec: OpenLoopSpec) -> Iterator[JobSpec]:
    """Unbounded iterator of :class:`JobSpec` in nondecreasing arrival order.

    Generates one :meth:`~OpenLoopSpec.effective_window` at a time; memory
    per step is O(jobs in window), never O(jobs so far). Job ids count up
    from 0.
    """
    rng = np.random.default_rng(spec.seed)
    factory = spec.dag_factory or mixed_dag_factory(spec.dag_size)
    window = spec.effective_window()
    job_id = 0
    w0 = spec.start
    while True:
        w1 = w0 + window
        arrivals = spec.process.times(rng, w0, w1)
        origins = rng.integers(spec.n_sites, size=arrivals.size)
        for t, sid in zip(arrivals, origins):
            t = float(t)
            dag = factory(rng)
            deadline = assign_deadline(
                dag, t, spec.laxity_factor, rng, jitter=spec.deadline_jitter
            )
            yield JobSpec(
                job=job_id, dag=dag, origin=int(sid), arrival=t, deadline=deadline
            )
            job_id += 1
        w0 = w1


def open_loop_workload(spec: OpenLoopSpec, duration: Time) -> Workload:
    """The rate × duration contract: the stream truncated to ``duration``.

    Returns the exact prefix of :func:`open_loop_jobs` with
    ``arrival < spec.start + duration`` as a batch
    :class:`~repro.workloads.jobs.Workload` — the replay side of the
    service ≡ batch differential.
    """
    if duration <= 0:
        raise WorkloadError(f"duration must be > 0, got {duration}")
    end = spec.start + duration
    wl = Workload()
    for job in itertools.takewhile(lambda j: j.arrival < end, open_loop_jobs(spec)):
        wl.add(job)
    return wl


def open_loop_rate(
    rho: float,
    capacities: Sequence[float],
    dag_factory: Optional[DagFactory] = None,
    dag_size: str = "small",
    seed: int = 0,
) -> float:
    """Aggregate arrival rate achieving offered load ``rho`` for a DAG mix.

    Same pilot-sample idiom as the batch generator: estimate E[work] from
    64 pilot DAGs drawn off ``seed + 1``, then
    :func:`~repro.workloads.load.calibrate_rate`.
    """
    factory = dag_factory or mixed_dag_factory(dag_size)
    pilot_rng = np.random.default_rng(seed + 1)
    pilot = [factory(pilot_rng).total_complexity() for _ in range(64)]
    mean_work = float(np.mean(pilot))
    return calibrate_rate(rho, mean_work, capacities)
