"""Sporadic workload generation.

The paper's workload model: jobs (DAGs with deadlines) "arrive at any time
on any site and compete for the computational resources". This package
generates such workloads deterministically:

* :mod:`repro.workloads.jobs` — :class:`JobSpec` (dag, origin, arrival,
  deadline) and the workload container;
* :mod:`repro.workloads.arrivals` — per-site Poisson arrival processes;
* :mod:`repro.workloads.deadlines` — deadline assignment via laxity factor
  × ideal critical path (the standard model in the cited literature);
* :mod:`repro.workloads.load` — offered-load calibration (arrival rate ↔
  fraction of aggregate computing capacity);
* :mod:`repro.workloads.scenarios` — named mixed-DAG scenario builders used
  by examples and benches;
* :mod:`repro.workloads.traces` — trace-driven workflow streams (Montage /
  Epigenomics shapes with empirical per-task-type runtimes, E11);
* :mod:`repro.workloads.openloop` — open-loop (rate × duration) job
  streams over the Poisson / MMPP / diurnal arrival processes, feeding the
  admission service and the E12 soak.
"""

from repro.workloads.jobs import JobSpec, Workload
from repro.workloads.arrivals import (
    DiurnalProcess,
    MMPPProcess,
    PoissonProcess,
    parse_arrival_spec,
    poisson_arrivals,
)
from repro.workloads.openloop import (
    OpenLoopSpec,
    open_loop_jobs,
    open_loop_rate,
    open_loop_workload,
)
from repro.workloads.deadlines import assign_deadline
from repro.workloads.load import calibrate_rate, offered_load
from repro.workloads.scenarios import (
    CHURN_LEVELS,
    WorkloadSpec,
    churn_plan,
    generate_workload,
    mixed_dag_factory,
)
from repro.workloads.traces import trace_dag_factory, trace_names

__all__ = [
    "CHURN_LEVELS",
    "churn_plan",
    "JobSpec",
    "Workload",
    "poisson_arrivals",
    "PoissonProcess",
    "MMPPProcess",
    "DiurnalProcess",
    "parse_arrival_spec",
    "OpenLoopSpec",
    "open_loop_jobs",
    "open_loop_workload",
    "open_loop_rate",
    "assign_deadline",
    "calibrate_rate",
    "offered_load",
    "WorkloadSpec",
    "generate_workload",
    "mixed_dag_factory",
    "trace_dag_factory",
    "trace_names",
]
