"""Named workload scenario builders.

:func:`generate_workload` is the single entry point the experiment runner
uses: it draws a DAG mix, per-site Poisson arrivals calibrated to an
offered load, and laxity-factor deadlines — all from one seeded generator.

Churn scenarios (:func:`churn_plan`, :data:`CHURN_LEVELS`) pair the
workload builders with named :class:`~repro.faults.plan.FaultPlan` presets
— "what a flaky WAN looks like" at three intensities — so experiments can
say ``faults=churn_plan("moderate", duration)`` instead of hand-tuning
loss probabilities and flap counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.graphs.dag import Dag
from repro.graphs.generators import (
    fork_join_dag,
    gaussian_elimination_dag,
    layered_dag,
    linear_chain_dag,
    random_dag,
)
from repro.workloads.arrivals import per_site_arrivals
from repro.workloads.deadlines import assign_deadline
from repro.workloads.jobs import JobSpec, Workload
from repro.workloads.load import calibrate_rate

DagFactory = Callable[[np.random.Generator], Dag]

#: named churn intensities: (message-loss prob, delay jitter, link flaps
#: per 100 time units, site partitions per 100 time units, mean downtime)
CHURN_LEVELS = {
    "light": (0.01, 0.1, 0.5, 0.0, 10.0),
    "moderate": (0.05, 0.5, 1.5, 0.5, 15.0),
    "severe": (0.15, 1.0, 3.0, 1.0, 25.0),
}


def churn_plan(level: str, duration: float, seed: int = 0):
    """A named :class:`~repro.faults.plan.FaultPlan` churn preset.

    ``level`` is one of :data:`CHURN_LEVELS`; flap/partition counts scale
    linearly with ``duration`` so "moderate" means the same weather on a
    300-unit run and a 3000-unit soak.
    """
    from repro.faults.plan import ChurnSpec, FaultPlan

    if level not in CHURN_LEVELS:
        raise WorkloadError(f"unknown churn level {level!r}; known: {sorted(CHURN_LEVELS)}")
    loss, jitter, links_per_100, sites_per_100, downtime = CHURN_LEVELS[level]
    n_links = int(round(links_per_100 * duration / 100.0))
    n_sites = int(round(sites_per_100 * duration / 100.0))
    return FaultPlan(
        loss_prob=loss,
        delay_jitter=jitter,
        link_churn=ChurnSpec(n_links, downtime, duration) if n_links else None,
        site_churn=ChurnSpec(n_sites, downtime, duration) if n_sites else None,
        seed=seed,
    )


#: workload knobs of the E10 wide-network cells: per-site offered load is
#: held constant (so total job count grows linearly with n and a cell's
#: cost is predictable), deadlines stay at the default laxity, and DAGs
#: stay small so the protocol — not task parallelism — dominates.
WIDENET_WORKLOAD = {
    "rho": 0.35,
    "duration": 120.0,
    "laxity_factor": 3.0,
    "dag_size": "small",
}


def widenet_workload_defaults(n_sites: int) -> dict:
    """Workload knobs for one E10 wide-network cell (see :data:`WIDENET_WORKLOAD`).

    Shaped so a 1024-site cell finishes in seconds on one core: arrivals
    scale linearly with ``n_sites`` through the per-site load alone. The
    ``n_sites`` parameter does not currently alter the knobs — it is the
    hook for future size-dependent shaping; the "cells start at 8 sites"
    floor is enforced once, by
    :func:`repro.experiments.widenet.widenet_topology`.
    """
    return dict(WIDENET_WORKLOAD)


def mixed_dag_factory(
    size: str = "small",
    c_range: Tuple[float, float] = (1.0, 8.0),
) -> DagFactory:
    """The default DAG mix: layered / fork-join / chain / random / LU.

    ``size``: ``"small"`` (≈5–15 tasks, protocol-dominated), ``"medium"``
    (≈15–40) or ``"large"`` (≈40–90, parallelism-dominated).
    """
    if size not in ("small", "medium", "large"):
        raise WorkloadError(f"unknown size {size!r}")

    def factory(rng: np.random.Generator) -> Dag:
        kind = rng.integers(5)
        if size == "small":
            layers, width, n = int(rng.integers(2, 4)), int(rng.integers(2, 4)), int(rng.integers(5, 14))
            ge = 3
        elif size == "medium":
            layers, width, n = int(rng.integers(3, 6)), int(rng.integers(3, 6)), int(rng.integers(15, 40))
            ge = 5
        else:
            layers, width, n = int(rng.integers(5, 9)), int(rng.integers(5, 9)), int(rng.integers(40, 90))
            ge = 8
        if kind == 0:
            return layered_dag(layers, width, rng, c_range, p_edge=0.35)
        if kind == 1:
            return fork_join_dag(max(2, n // 3), rng, c_range)
        if kind == 2:
            return linear_chain_dag(max(2, n // 2), rng, c_range)
        if kind == 3:
            return random_dag(n, rng, c_range, p_edge=0.2)
        return gaussian_elimination_dag(ge, rng, c_range)

    return factory


@dataclass
class WorkloadSpec:
    """Everything needed to generate a workload deterministically."""

    n_sites: int
    rho: float
    duration: float
    laxity_factor: float = 3.0
    start: float = 0.0
    dag_factory: Optional[DagFactory] = None
    dag_size: str = "small"
    deadline_jitter: float = 0.2
    hot_fraction: float = 0.0
    hot_sites: int = 0
    capacities: Optional[Sequence[float]] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_sites < 1:
            raise WorkloadError("n_sites must be >= 1")
        if self.duration <= 0:
            raise WorkloadError("duration must be > 0")


def generate_workload(spec: WorkloadSpec) -> Workload:
    """Draw the full workload for one run."""
    rng = np.random.default_rng(spec.seed)
    factory = spec.dag_factory or mixed_dag_factory(spec.dag_size)
    capacities = (
        list(spec.capacities) if spec.capacities is not None else [1.0] * spec.n_sites
    )

    # Pilot sample to estimate E[work] for load calibration.
    pilot_rng = np.random.default_rng(spec.seed + 1)
    pilot = [factory(pilot_rng).total_complexity() for _ in range(64)]
    mean_work = float(np.mean(pilot))
    rate = calibrate_rate(spec.rho, mean_work, capacities)

    arrivals = per_site_arrivals(
        rng,
        spec.n_sites,
        rate,
        spec.start,
        spec.start + spec.duration,
        hot_fraction=spec.hot_fraction,
        hot_sites=spec.hot_sites,
    )
    wl = Workload()
    for job_id, (t, sid) in enumerate(arrivals):
        dag = factory(rng)
        deadline = assign_deadline(
            dag, t, spec.laxity_factor, rng, jitter=spec.deadline_jitter
        )
        wl.add(JobSpec(job=job_id, dag=dag, origin=sid, arrival=t, deadline=deadline))
    return wl
