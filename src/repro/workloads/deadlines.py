"""Deadline assignment.

The canonical model of the literature the paper builds on (Ramamritham &
Stankovic; Cheng et al.): a job's relative deadline is its ideal execution
time scaled by a *laxity factor* — ``d = arrival + laxity_factor × CP``,
where CP is the critical path length (the minimum possible makespan on
unit-speed processors with free communication). ``laxity_factor`` close to
1 means tight deadlines (little room to distribute); large factors make
almost everything feasible somewhere.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.graphs.analysis import critical_path_length
from repro.graphs.dag import Dag
from repro.types import Time


def assign_deadline(
    dag: Dag,
    arrival: Time,
    laxity_factor: float,
    rng: np.random.Generator | None = None,
    jitter: float = 0.0,
    reference_speed: float = 1.0,
) -> Time:
    """Absolute deadline for ``dag`` arriving at ``arrival``.

    ``jitter`` optionally randomises the factor uniformly in
    ``[factor·(1-jitter), factor·(1+jitter)]`` so deadlines are not all
    proportional (exercises different adjustment cases).

    ``reference_speed`` is the computing power the critical path is
    normalised against. The default 1.0 is the literature's model —
    deadlines come from the *application*, calibrated to a nominal
    processor, and do not loosen because a job happened to arrive on a
    slow site (that asymmetry is exactly what E11 measures). Pass an
    explicit speed to anchor deadlines to a different nominal machine
    (e.g. the network's slowest tier in a feasibility study).
    """
    if laxity_factor <= 0:
        raise WorkloadError(f"laxity_factor must be > 0, got {laxity_factor}")
    if not 0.0 <= jitter < 1.0:
        raise WorkloadError(f"jitter must be in [0, 1), got {jitter}")
    if reference_speed <= 0:
        raise WorkloadError(f"reference_speed must be > 0, got {reference_speed}")
    factor = laxity_factor
    if jitter > 0:
        if rng is None:
            raise WorkloadError("jitter needs an rng")
        factor *= float(rng.uniform(1.0 - jitter, 1.0 + jitter))
    cp = critical_path_length(dag) / reference_speed
    return arrival + factor * cp


def tightness(dag: Dag, arrival: Time, deadline: Time) -> float:
    """Inverse laxity factor of an assigned deadline (diagnostics)."""
    cp = critical_path_length(dag)
    if cp <= 0:
        raise WorkloadError("degenerate DAG with zero critical path")
    return (deadline - arrival) / cp
