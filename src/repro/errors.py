"""Exception hierarchy for the RTDS reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base type. Subsystems raise the most specific subclass available;
messages always identify the offending entity (task id, site id, ...) to keep
large-simulation failures diagnosable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class DagError(ReproError):
    """Malformed DAG: cycles, unknown task references, negative weights."""


class CycleError(DagError):
    """The precedence relation contains a cycle (so it is not a DAG)."""


class TopologyError(ReproError):
    """Invalid network topology: disconnected, bad parameters, self loops."""


class SimulationError(ReproError):
    """Internal simulator invariant violated (event ordering, FIFO links)."""


class RoutingError(ReproError):
    """Routing-table or distributed shortest-path protocol error."""


class SchedulingError(ReproError):
    """Local scheduler invariant violated (overlapping reservations, ...)."""


class InfeasibleError(SchedulingError):
    """A task set cannot be scheduled within its release/deadline windows.

    This is *not* an internal failure: feasibility tests raise or return
    ``False`` depending on the API; protocol code treats it as a rejection.
    """


class MappingError(ReproError):
    """The Mapper could not produce a Trial-Mapping (e.g. no processors)."""


class ProtocolError(ReproError):
    """RTDS protocol state-machine violation (unexpected message, lock)."""


class ConfigError(ReproError):
    """Invalid experiment or algorithm configuration."""


class CampaignCellError(ReproError):
    """One or more campaign cells failed (raised after the whole sweep ran).

    Carries the failed
    :class:`~repro.experiments.parallel.CellResult` records in
    ``failures``; the message names every cell key and seed so a single
    broken replication is diagnosable without a bare mid-sweep traceback.
    """

    def __init__(self, failures):
        self.failures = list(failures)
        detail = "; ".join(
            f"cell {r.key} ({r.label}, seed={r.seed}): {r.error}" for r in self.failures
        )
        super().__init__(
            f"{len(self.failures)} campaign cell(s) failed — {detail} "
            "(when a result store is attached, failures are recorded there "
            "and a resumed run retries only them)"
        )


class WorkloadError(ReproError):
    """Invalid workload specification (negative rates, bad laxity factor)."""
