"""Shared machinery of baseline scheduler sites.

Every baseline site owns the same substrate an RTDS site does — a
scheduling plan, a compute-processor executor, the phased Bellman–Ford for
routing — so comparisons isolate the *policy*, not the infrastructure.
Baselines run the routing protocol long enough to cover the whole network
(they need arbitrary-destination routing; the experiment runner passes the
network's hop diameter), which is itself part of the contrast with RTDS's
2h-bounded flooding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.events import JobOutcome, JobRecord
from repro.core.local_test import local_guarantee_test
from repro.graphs.dag import Dag
from repro.graphs.serialization import dag_from_dict, dag_to_dict
from repro.routing.bellman_ford import PhasedBellmanFord
from repro.sched.executor import PlanExecutor
from repro.sched.plan import SchedulingPlan
from repro.simnet.network import Network
from repro.simnet.site import SiteBase
from repro.types import JobId, SiteId, TaskId, Time


@dataclass
class BaselineJobCtx:
    """A job in flight inside a baseline protocol."""

    job: JobId
    dag: Dag
    deadline: Time
    arrival: Time
    origin: SiteId


class BaselineSite(SiteBase):
    """Common base: plan + executor + routing + metrics plumbing."""

    def __init__(
        self,
        sid: SiteId,
        network: Network,
        routing_phases: int,
        surplus_window: float = 200.0,
        speed: float = 1.0,
        metrics=None,
        mgmt_overhead: Time = 0.0,
        routing_factory=None,
    ) -> None:
        super().__init__(sid, network, mgmt_overhead, speed=speed)
        self.metrics = metrics
        self.plan = SchedulingPlan(sid, surplus_window, speed=speed, obs=self.obs)
        self.executor = PlanExecutor(network.sim, self.plan)
        if metrics is not None and hasattr(metrics, "on_task_complete"):
            self.executor.on_complete.append(metrics.on_task_complete)
        # same pluggable routing back end RTDSSite has: None = the phased
        # protocol, or an oracle factory installing precomputed tables
        make_routing = routing_factory if routing_factory is not None else PhasedBellmanFord
        self.routing = make_routing(self, routing_phases)

    def start(self) -> None:
        self.routing.start()

    def prune_history(self, before: Time) -> int:
        """Forget finished work older than ``before`` (long-run hygiene)."""
        n = self.plan.prune_before(before)
        self.executor.prune_done_before(before)
        info = getattr(self, "_exec_info", None)
        if info is not None:
            live_jobs = {key[0] for key in self.executor.records()}
            for job in list(info):
                if job not in live_jobs:
                    del info[job]
        return n

    # -- shared helpers ------------------------------------------------------

    def register_arrival(self, ctx: BaselineJobCtx) -> None:
        if self.metrics is not None:
            self.metrics.register_job(
                JobRecord(
                    job=ctx.job,
                    origin=ctx.origin,
                    arrival=ctx.arrival,
                    deadline=ctx.deadline,
                    n_tasks=len(ctx.dag),
                    total_work=ctx.dag.total_complexity(),
                )
            )

    def decide(
        self,
        ctx: BaselineJobCtx,
        outcome: JobOutcome,
        hosts: Optional[List[SiteId]] = None,
    ) -> None:
        self.trace("job.decision", job=ctx.job, outcome=outcome.value)
        if self.metrics is not None:
            self.metrics.decide(ctx.job, outcome, self.now, hosts=hosts)

    def try_commit_whole_dag(self, ctx: BaselineJobCtx) -> bool:
        """Local test + commit of the entire DAG on this site."""
        fit = local_guarantee_test(
            self.plan.timeline,
            ctx.dag,
            ctx.job,
            release=self.now,
            deadline=ctx.deadline,
            now=self.now,
            speed=self.speed,
        )
        if fit is None:
            return False
        slots, gates = fit
        self.plan.commit(slots)
        self.executor.notify_committed(slots, gates)
        return True

    # -- wire helpers for shipping DAGs around ----------------------------------

    @staticmethod
    def pack_ctx(ctx: BaselineJobCtx) -> Dict:
        return {
            "job": ctx.job,
            "dag": dag_to_dict(ctx.dag),
            "deadline": ctx.deadline,
            "arrival": ctx.arrival,
            "origin": ctx.origin,
        }

    @staticmethod
    def unpack_ctx(payload: Dict) -> BaselineJobCtx:
        return BaselineJobCtx(
            job=payload["job"],
            dag=dag_from_dict(payload["dag"]),
            deadline=payload["deadline"],
            arrival=payload["arrival"],
            origin=payload["origin"],
        )


def build_cross_site_gates(
    sid: SiteId,
    job: JobId,
    my_tasks: Set[TaskId],
    host: Dict[TaskId, SiteId],
    preds: Dict[TaskId, List[TaskId]],
) -> Dict[Tuple[JobId, TaskId], Set[Tuple[str, JobId, TaskId]]]:
    """Executor gates for a multi-site assignment (same rule as RTDS §11)."""
    gates: Dict[Tuple[JobId, TaskId], Set[Tuple[str, JobId, TaskId]]] = {}
    for t in my_tasks:
        deps = set()
        for p in preds[t]:
            if host[p] == sid:
                deps.add(("done", job, p))
            else:
                deps.add(("result", job, p))
        if deps:
            gates[(job, t)] = deps
    return gates
