"""Local-only baseline: accept iff the arrival site alone can guarantee.

No cooperation, no messages. This is the floor: the difference between any
distributed scheme's guarantee ratio and this one is the value cooperation
adds (the quantity the paper's conclusion claims Computing Spheres
increase).
"""

from __future__ import annotations

from repro.baselines.base import BaselineJobCtx, BaselineSite
from repro.core.events import JobOutcome
from repro.graphs.dag import Dag
from repro.simnet.network import Network
from repro.types import JobId, SiteId, Time


class LocalOnlySite(BaselineSite):
    """A site that never talks to anyone about scheduling."""

    def __init__(
        self,
        sid: SiteId,
        network: Network,
        surplus_window: float = 200.0,
        speed: float = 1.0,
        metrics=None,
        routing_factory=None,
    ) -> None:
        # Routing still runs one phase (adjacent links) so the substrate is
        # identical; local-only never sends a routed message.
        super().__init__(
            sid,
            network,
            routing_phases=1,
            surplus_window=surplus_window,
            speed=speed,
            metrics=metrics,
            routing_factory=routing_factory,
        )

    def submit_job(self, job: JobId, dag: Dag, deadline: Time) -> None:
        ctx = BaselineJobCtx(
            job=job, dag=dag, deadline=deadline, arrival=self.now, origin=self.sid
        )
        self.register_arrival(ctx)
        if self.try_commit_whole_dag(ctx):
            self.decide(ctx, JobOutcome.ACCEPTED_LOCAL, hosts=[self.sid])
        else:
            self.decide(ctx, JobOutcome.REJECTED_NO_SPHERE)
