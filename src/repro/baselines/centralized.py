"""Centralized-coordinator baseline.

The configuration most prior work assumes (and the paper argues breaks down
on wide networks): one coordinator with a *global, exact* view of every
site's plan makes all scheduling decisions.

Model choices (idealised in the coordinator's favour, documented in
DESIGN.md):

* the coordinator's knowledge is an oracle — its shadow timelines *are* the
  ground truth, because every admission flows through it;
* mapping is stronger than RTDS's: greedy earliest-finish insertion into
  the *actual* idle intervals of candidate sites, with exact pairwise
  delays (the coordinator knows the topology);
* but physics still applies: a job takes ``delay(origin → coordinator)`` to
  reach it, and task code takes ``delay(coordinator → host)`` to ship, so
  on wide networks remote jobs burn their laxity in transit — exactly the
  effect RTDS's bounded spheres avoid.

Messages: JOB_SUBMIT (routed), EXEC_ASSIGN per host (routed), RESULT
between hosts, REJECT_NOTIFY back to the origin (so per-job message costs
are honest).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

import heapq

from repro.baselines.base import BaselineJobCtx, BaselineSite, build_cross_site_gates
from repro.core.events import JobOutcome
from repro.errors import ProtocolError, SchedulingError
from repro.graphs.analysis import bottom_levels
from repro.graphs.dag import Dag
from repro.graphs.serialization import estimate_code_size
from repro.sched.intervals import BusyTimeline, Reservation
from repro.simnet.message import Message
from repro.simnet.network import Network
from repro.types import JobId, SiteId, TaskId, Time

MSG_JOB_SUBMIT = "C_JOB_SUBMIT"
MSG_EXEC_ASSIGN = "C_EXEC_ASSIGN"
MSG_C_RESULT = "C_RESULT"


class CentralizedCoordinator:
    """The global scheduler living on the coordinator site.

    ``shortlist`` bounds how many candidate sites the mapper considers per
    job (sorted by idle time): realistic centralized schedulers shortlist,
    and it keeps the oracle's work polynomial.
    """

    def __init__(
        self,
        site: "CentralizedSite",
        all_sites: Dict[SiteId, "CentralizedSite"],
        distances: Dict[SiteId, Dict[SiteId, Time]],
        shortlist: int = 8,
    ) -> None:
        self.site = site
        self.all_sites = all_sites
        self.distances = distances
        self.shortlist = shortlist
        #: shadow timelines — ground truth, since all admissions come here.
        #: Kept as *copies* updated synchronously at decision time: remote
        #: sites' real plans lag behind by one message delay, and mapping
        #: against them directly could double-book a slot decided for a job
        #: whose EXEC_ASSIGN is still in flight.
        self.shadow: Dict[SiteId, BusyTimeline] = {
            sid: s.plan.timeline.copy() for sid, s in all_sites.items()
        }

    def handle_job(self, ctx: BaselineJobCtx) -> None:
        now = self.site.now
        mapping = self._map_job(ctx, now)
        if mapping is None:
            self.site.decide(ctx, JobOutcome.REJECTED_MAPPER)
            return
        slots_by_site, host = mapping
        for sid, slots in slots_by_site.items():
            for r in slots:
                self.shadow[sid].reserve(r)
        preds = {t: list(ctx.dag.predecessors(t)) for t in ctx.dag}
        volumes = {t: ctx.dag.task(t).data_volume for t in ctx.dag}
        hosts = sorted(slots_by_site)
        for sid in hosts:
            slots = slots_by_site[sid]
            if sid == self.site.sid:
                self.site.commit_assignment(ctx.job, slots, host, preds, volumes)
            else:
                self.site.send_to(
                    sid,
                    MSG_EXEC_ASSIGN,
                    {
                        "job": ctx.job,
                        "slots": [
                            (r.task, r.start, r.end, r.release, r.deadline)
                            for r in slots
                        ],
                        "host": host,
                        "preds": preds,
                        "volumes": volumes,
                    },
                    size=estimate_code_size(ctx.dag),
                )
        self.site.decide(ctx, JobOutcome.ACCEPTED_DISTRIBUTED, hosts=hosts)

    # -- the global mapper ------------------------------------------------------

    def _map_job(
        self, ctx: BaselineJobCtx, now: Time
    ) -> Optional[Tuple[Dict[SiteId, List[Reservation]], Dict[TaskId, SiteId]]]:
        """EFT insertion over shortlisted sites' true timelines."""
        window = self.site.plan.surplus_window
        cands = sorted(
            self.all_sites,
            key=lambda sid: (-self.shadow[sid].idle_time(now, now + window), sid),
        )[: self.shortlist]
        if ctx.origin not in cands:
            cands.append(ctx.origin)
        scratch = {sid: self.shadow[sid].copy() for sid in cands}
        speeds = {sid: self.all_sites[sid].speed for sid in cands}
        #: earliest a host can start anything: code must arrive first
        code_ready = {
            sid: now + (0.0 if sid == self.site.sid else self._dist(self.site.sid, sid))
            for sid in cands
        }

        prio = bottom_levels(ctx.dag)
        topo_index = ctx.dag.topo_index()
        heap = [
            (-prio[t], topo_index[t], t)
            for t in ctx.dag
            if not ctx.dag.predecessors(t)
        ]
        heapq.heapify(heap)
        unmapped = {t: len(ctx.dag.predecessors(t)) for t in ctx.dag}
        host: Dict[TaskId, SiteId] = {}
        finish: Dict[TaskId, Time] = {}
        placed: Dict[TaskId, Reservation] = {}

        while heap:
            _, _, t = heapq.heappop(heap)
            c = ctx.dag.complexity(t)
            best = None  # (finish, sid, start)
            for sid in cands:
                ready = code_ready[sid]
                for p in ctx.dag.predecessors(t):
                    lag = 0.0 if host[p] == sid else self._dist(host[p], sid)
                    ready = max(ready, finish[p] + lag)
                dur = c / speeds[sid]
                s = scratch[sid].earliest_fit(dur, ready, ctx.deadline)
                if s is None:
                    continue
                f = s + dur
                if best is None or f < best[0] - 1e-12 or (abs(f - best[0]) <= 1e-12 and sid < best[1]):
                    best = (f, sid, s)
            if best is None:
                return None
            f, sid, s = best
            res = Reservation(s, f, ctx.job, t, release=s, deadline=ctx.deadline)
            scratch[sid].reserve(res)
            host[t] = sid
            finish[t] = f
            placed[t] = res
            for succ in ctx.dag.successors(t):
                unmapped[succ] -= 1
                if unmapped[succ] == 0:
                    heapq.heappush(heap, (-prio[succ], topo_index[succ], succ))

        if max(finish.values()) > ctx.deadline + 1e-9:
            return None
        slots_by_site: Dict[SiteId, List[Reservation]] = {}
        for t, res in placed.items():
            slots_by_site.setdefault(host[t], []).append(res)
        return slots_by_site, host

    def _dist(self, a: SiteId, b: SiteId) -> Time:
        if a == b:
            return 0.0
        return self.distances[a][b]


class CentralizedSite(BaselineSite):
    """A site in the centralized configuration.

    Exactly one site (the ``coordinator_id``) hosts the
    :class:`CentralizedCoordinator`; the experiment runner installs it after
    construction via :meth:`install_coordinator`.
    """

    def __init__(
        self,
        sid: SiteId,
        network: Network,
        routing_phases: int,
        coordinator_id: SiteId = 0,
        surplus_window: float = 200.0,
        speed: float = 1.0,
        metrics=None,
        routing_factory=None,
    ) -> None:
        super().__init__(
            sid,
            network,
            routing_phases=routing_phases,
            surplus_window=surplus_window,
            speed=speed,
            metrics=metrics,
            routing_factory=routing_factory,
        )
        self.coordinator_id = coordinator_id
        self.coordinator: Optional[CentralizedCoordinator] = None
        #: the site's ElectionManager when the run enables leader election
        #: (repro.membership.election); None keeps every pre-election code
        #: path — including the commit fast path — byte-identical
        self.election: Optional[Any] = None
        self._exec_info: Dict[JobId, Tuple[Dict, Dict, Dict]] = {}
        self.executor.on_complete.append(self._on_task_complete)
        self.on(MSG_JOB_SUBMIT, self._h_submit)
        self.on(MSG_EXEC_ASSIGN, self._h_assign)
        self.on(MSG_C_RESULT, self._h_result)

    def install_coordinator(
        self,
        all_sites: Dict[SiteId, "CentralizedSite"],
        distances: Dict[SiteId, Dict[SiteId, Time]],
        shortlist: int = 8,
    ) -> None:
        if self.sid != self.coordinator_id:
            raise ProtocolError(f"site {self.sid} is not the coordinator")
        self.coordinator = CentralizedCoordinator(self, all_sites, distances, shortlist)

    # -- arrival ------------------------------------------------------------------

    def submit_job(self, job: JobId, dag: Dag, deadline: Time) -> None:
        ctx = BaselineJobCtx(
            job=job, dag=dag, deadline=deadline, arrival=self.now, origin=self.sid
        )
        self.register_arrival(ctx)
        if self.sid == self.coordinator_id:
            if self.coordinator is None:
                # believed coordinator is this site, but it holds no
                # coordinator state (abdicated mid-election): nowhere to go
                self.decide(ctx, JobOutcome.LOST_COORDINATOR)
                return
            self.coordinator.handle_job(ctx)
        elif self.election is not None and self.election.suspecting:
            # mid-election there is no coordinator to route to; a named
            # loss keeps the guarantee-ratio denominator honest
            self.decide(ctx, JobOutcome.LOST_COORDINATOR)
        else:
            self.send_to(
                self.coordinator_id,
                MSG_JOB_SUBMIT,
                self.pack_ctx(ctx),
                size=estimate_code_size(dag),
            )

    def _h_submit(self, msg: Message) -> None:
        ctx = self.unpack_ctx(msg.payload)
        if self.coordinator is None:
            # a submission caught a deposed coordinator (in flight across
            # an election); unreachable without election enabled
            self.decide(ctx, JobOutcome.LOST_COORDINATOR)
            return
        self.coordinator.handle_job(ctx)

    # -- hosting --------------------------------------------------------------------

    def commit_assignment(
        self,
        job: JobId,
        slots: List[Reservation],
        host: Dict[TaskId, SiteId],
        preds: Dict[TaskId, List[TaskId]],
        volumes: Dict[TaskId, float],
    ) -> None:
        if self.election is not None:
            # A deposed coordinator's EXEC_ASSIGN can still be in flight
            # when its successor starts booking the same idle time — the
            # successor's shadow snapshot cannot see it. Probe against the
            # real timeline and drop conflicting stale assignments instead
            # of crashing the host's plan.
            probe = self.plan.timeline.copy()
            try:
                for r in slots:
                    probe.reserve(r)
            except SchedulingError:
                self.election.stats.stale_assignments_dropped += 1
                self.trace("election.stale_assignment_dropped", job=job)
                return
        my_tasks = {r.task for r in slots}
        gates = build_cross_site_gates(self.sid, job, my_tasks, host, preds)
        self.plan.commit(slots)
        self.executor.notify_committed(slots, gates)
        succs: Dict[TaskId, List[TaskId]] = {t: [] for t in host}
        for t, ps in preds.items():
            for p in ps:
                succs[p].append(t)
        self._exec_info[job] = (host, succs, volumes)

    def _h_assign(self, msg: Message) -> None:
        job = msg.payload["job"]
        slots = [
            Reservation(s, e, job, task, release=r, deadline=d)
            for (task, s, e, r, d) in msg.payload["slots"]
        ]
        self.commit_assignment(
            job, slots, msg.payload["host"], msg.payload["preds"], msg.payload["volumes"]
        )

    def _h_result(self, msg: Message) -> None:
        self.executor.deliver_token(("result", msg.payload["job"], msg.payload["task"]))

    def _on_task_complete(self, job: JobId, task: TaskId, time: Time) -> None:
        info = self._exec_info.get(job)
        if info is None:
            return
        host, succs, volumes = info
        notified: Set[SiteId] = set()
        for succ in succs.get(task, ()):
            dest = host[succ]
            if dest != self.sid and dest not in notified:
                notified.add(dest)
                self.send_to(
                    dest,
                    MSG_C_RESULT,
                    {"job": job, "task": task},
                    size=max(1.0, volumes.get(task, 0.0)),
                )
