"""Baseline schedulers RTDS is compared against (experiments E1/E2).

* :mod:`repro.baselines.local_only` — accept iff the §5 local test passes
  on the arrival site (no cooperation); the floor every distributed scheme
  must beat.
* :mod:`repro.baselines.centralized` — an idealised centralized controller:
  one coordinator with an exact global view assigns tasks with real
  insertion; jobs and code still pay communication delays to/from the
  coordinator. Upper bound on knowledge, lower bound on wide-network
  latency tolerance — the "previous work" configuration the paper argues
  against.
* :mod:`repro.baselines.focused` — focused addressing + bidding in the
  style of the paper's refs [4]/[12] (Cheng/Stankovic/Ramamritham): sites
  periodically *flood* their surplus network-wide; a locally rejected DAG is
  offloaded whole to the best-known site after a request-for-bids round.
* :mod:`repro.baselines.random_offload` — forward a rejected DAG to random
  known sites with bounded retries (sanity baseline).
"""

from repro.baselines.base import BaselineSite
from repro.baselines.local_only import LocalOnlySite
from repro.baselines.centralized import CentralizedCoordinator, CentralizedSite
from repro.baselines.focused import FocusedSite
from repro.baselines.random_offload import RandomOffloadSite

__all__ = [
    "BaselineSite",
    "LocalOnlySite",
    "CentralizedCoordinator",
    "CentralizedSite",
    "FocusedSite",
    "RandomOffloadSite",
]
