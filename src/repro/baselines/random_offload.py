"""Random-offload baseline.

On local rejection, ship the whole DAG to a uniformly random known site
within ``max_hops`` (a chain of up to ``tries`` attempts, each re-running
the local test on arrival). No state is exchanged beforehand — this is the
zero-information sanity baseline: any scheme with actual information
(spheres, bidding, global view) should beat it.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.baselines.base import BaselineJobCtx, BaselineSite
from repro.core.events import JobOutcome
from repro.graphs.dag import Dag
from repro.graphs.serialization import estimate_code_size
from repro.simnet.message import Message
from repro.simnet.network import Network
from repro.types import JobId, SiteId, Time

MSG_R_OFFLOAD = "R_OFFLOAD"


class RandomOffloadSite(BaselineSite):
    """A site that offloads rejected DAGs to random peers."""

    def __init__(
        self,
        sid: SiteId,
        network: Network,
        routing_phases: int,
        max_hops: int = 4,
        tries: int = 3,
        seed: int = 0,
        surplus_window: float = 200.0,
        speed: float = 1.0,
        metrics=None,
        routing_factory=None,
    ) -> None:
        super().__init__(
            sid,
            network,
            routing_phases=routing_phases,
            surplus_window=surplus_window,
            speed=speed,
            metrics=metrics,
            routing_factory=routing_factory,
        )
        self.max_hops = max_hops
        self.tries = tries
        self.rng = np.random.default_rng((seed, sid))
        self.on(MSG_R_OFFLOAD, self._h_offload)

    def submit_job(self, job: JobId, dag: Dag, deadline: Time) -> None:
        ctx = BaselineJobCtx(
            job=job, dag=dag, deadline=deadline, arrival=self.now, origin=self.sid
        )
        self.register_arrival(ctx)
        if self.try_commit_whole_dag(ctx):
            self.decide(ctx, JobOutcome.ACCEPTED_LOCAL, hosts=[self.sid])
            return
        self._forward_job(ctx, tries_left=self.tries, visited=[self.sid])

    def _forward_job(self, ctx: BaselineJobCtx, tries_left: int, visited: List[SiteId]) -> None:
        if tries_left <= 0:
            self.decide(ctx, JobOutcome.REJECTED_VALIDATION)
            return
        options = [
            s for s in self.routing.table.within_phase(self.max_hops)
            if s != self.sid and s not in visited
        ]
        if not options:
            self.decide(ctx, JobOutcome.REJECTED_NO_SPHERE)
            return
        target = options[int(self.rng.integers(len(options)))]
        payload = self.pack_ctx(ctx)
        payload["tries_left"] = tries_left - 1
        payload["visited"] = visited + [target]
        self.send_to(target, MSG_R_OFFLOAD, payload, size=estimate_code_size(ctx.dag))

    def _h_offload(self, msg: Message) -> None:
        ctx = self.unpack_ctx(msg.payload)
        if self.try_commit_whole_dag(ctx):
            self.decide(ctx, JobOutcome.ACCEPTED_DISTRIBUTED, hosts=[self.sid])
            return
        self._forward_job(ctx, msg.payload["tries_left"], list(msg.payload["visited"]))
