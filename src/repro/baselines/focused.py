"""Focused addressing + bidding baseline (paper refs [4], [12]).

The Cheng/Stankovic/Ramamritham scheme the paper positions itself against
(their [4] is under-specified; we implement the standard reading used by
[12]-style evaluations):

* every site **periodically broadcasts its surplus to the whole network**
  by flooding — the cost term RTDS eliminates (its traffic grows with
  |E| × sites × time, regardless of where jobs arrive);
* a job that fails the local test triggers *focused addressing*: the origin
  picks the best site from its (possibly stale) surplus table and ships the
  **whole DAG** there; in parallel it runs *bidding* — a request-for-bids to
  the next-best ``bid_count`` sites, whose fresh-surplus answers form a
  fallback chain the DAG walks if the focused site cannot guarantee it;
* each attempt re-runs the §5 local test on the receiving site; exhausting
  the chain rejects the job.

Everything pays real message delays, so stale surplus and transit time are
the scheme's genuine failure modes, as in the original papers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.baselines.base import BaselineJobCtx, BaselineSite
from repro.core.events import JobOutcome
from repro.graphs.dag import Dag
from repro.graphs.serialization import estimate_code_size
from repro.simnet.message import Message
from repro.simnet.network import Network
from repro.types import JobId, SiteId, Time

MSG_SURPLUS = "F_SURPLUS"
MSG_RFB = "F_RFB"
MSG_BID = "F_BID"
MSG_OFFLOAD = "F_OFFLOAD"


class FocusedSite(BaselineSite):
    """A site running focused addressing + bidding."""

    def __init__(
        self,
        sid: SiteId,
        network: Network,
        routing_phases: int,
        broadcast_period: float = 50.0,
        bid_count: int = 3,
        bid_wait: float = 10.0,
        surplus_window: float = 200.0,
        speed: float = 1.0,
        metrics=None,
        routing_factory=None,
    ) -> None:
        super().__init__(
            sid,
            network,
            routing_phases=routing_phases,
            surplus_window=surplus_window,
            speed=speed,
            metrics=metrics,
            routing_factory=routing_factory,
        )
        self.broadcast_period = broadcast_period
        self.bid_count = bid_count
        self.bid_wait = bid_wait
        #: latest known surplus per origin site (stale by design)
        self.known_surplus: Dict[SiteId, float] = {}
        #: latest known computing power per origin site (§13 heterogeneity;
        #: speeds are static, but flooding them with the surplus keeps the
        #: scheme honest — a site only knows what was broadcast to it)
        self.known_speed: Dict[SiteId, float] = {}
        #: flooding dedup: highest sequence seen per origin
        self._seen_seq: Dict[SiteId, int] = {}
        self._seq = 0
        #: job -> (ctx, awaited bidder set, received bids)
        self._pending_bids: Dict[JobId, Tuple[BaselineJobCtx, Set[SiteId], Dict[SiteId, float]]] = {}
        self.on(MSG_SURPLUS, self._h_surplus)
        self.on(MSG_RFB, self._h_rfb)
        self.on(MSG_BID, self._h_bid)
        self.on(MSG_OFFLOAD, self._h_offload)

    def start(self) -> None:
        super().start()
        # Stagger the periodic broadcasts so they do not synchronise.
        offset = (self.sid % 16) * self.broadcast_period / 16.0
        self.sim.schedule(offset, self._periodic_broadcast)

    # -- periodic network-wide surplus flooding ------------------------------

    def _periodic_broadcast(self) -> None:
        self._seq += 1
        self._flood(
            {
                "origin": self.sid,
                "seq": self._seq,
                "surplus": self.plan.surplus(self.now),
                "speed": self.speed,
            },
            exclude=None,
        )
        self.sim.schedule(self.broadcast_period, self._periodic_broadcast)

    def _flood(self, payload: Dict, exclude: Optional[SiteId]) -> None:
        for nb in self.neighbors():
            if nb != exclude:
                self.send_neighbor(nb, MSG_SURPLUS, payload, size=3.0)

    def _h_surplus(self, msg: Message) -> None:
        origin = msg.payload["origin"]
        seq = msg.payload["seq"]
        if origin == self.sid or self._seen_seq.get(origin, 0) >= seq:
            return
        self._seen_seq[origin] = seq
        self.known_surplus[origin] = msg.payload["surplus"]
        # pre-heterogeneity senders omit "speed"; treat them as unit speed
        self.known_speed[origin] = msg.payload.get("speed", 1.0)
        self._flood(msg.payload, exclude=msg.src)

    # -- job flow ------------------------------------------------------------

    def submit_job(self, job: JobId, dag: Dag, deadline: Time) -> None:
        ctx = BaselineJobCtx(
            job=job, dag=dag, deadline=deadline, arrival=self.now, origin=self.sid
        )
        self.register_arrival(ctx)
        if self.try_commit_whole_dag(ctx):
            self.decide(ctx, JobOutcome.ACCEPTED_LOCAL, hosts=[self.sid])
            return
        self._start_focused(ctx)

    def _candidates(self) -> List[SiteId]:
        """Known sites by descending (stale) effective capacity.

        The ranking weight is ``surplus × speed`` — the idle *work rate*
        a candidate offers, not its idle fraction. On a homogeneous
        network (every speed 1.0) this is exactly the historical
        surplus-only order; with heterogeneous sites, a half-idle speed-4
        site correctly outranks a fully idle speed-1 one.
        """
        return sorted(
            (s for s in self.known_surplus if s != self.sid),
            key=lambda s: (-self.known_surplus[s] * self.known_speed.get(s, 1.0), s),
        )

    def _start_focused(self, ctx: BaselineJobCtx) -> None:
        cands = self._candidates()
        if not cands:
            self.decide(ctx, JobOutcome.REJECTED_NO_SPHERE)
            return
        bidders = set(cands[1 : 1 + self.bid_count])
        self._pending_bids[ctx.job] = (ctx, set(bidders), {})
        for b in sorted(bidders):
            self.send_to(b, MSG_RFB, {"job": ctx.job, "origin": self.sid}, size=2.0)
        # Focused addressee gets the DAG immediately; bids form the fallback
        # chain attached when they arrive (or when the wait expires).
        focused = cands[0]
        job = ctx.job
        if bidders:
            self.sim.schedule(self.bid_wait, lambda: self._bids_done(job, focused))
        else:
            self._ship(ctx, focused, fallback=[])

    def _h_rfb(self, msg: Message) -> None:
        self.send_to(
            msg.payload["origin"],
            MSG_BID,
            {
                "job": msg.payload["job"],
                "site": self.sid,
                # a bid is fresh effective capacity: surplus × speed
                "surplus": self.plan.surplus(self.now) * self.speed,
            },
            size=2.0,
        )

    def _h_bid(self, msg: Message) -> None:
        job = msg.payload["job"]
        pend = self._pending_bids.get(job)
        if pend is None:
            return  # job already shipped with the bids that had arrived
        ctx, awaited, bids = pend
        bids[msg.payload["site"]] = msg.payload["surplus"]
        if set(bids) >= awaited:
            self._bids_done(job, focused=None)

    def _bids_done(self, job: JobId, focused: Optional[SiteId]) -> None:
        pend = self._pending_bids.pop(job, None)
        if pend is None:
            return
        ctx, _awaited, bids = pend
        chain = sorted(bids, key=lambda s: (-bids[s], s))
        if focused is None:
            # All bids arrived before the timer: focused pick still first.
            cands = self._candidates()
            focused = cands[0] if cands else None
        if focused is None:
            self.decide(ctx, JobOutcome.REJECTED_NO_SPHERE)
            return
        self._ship(ctx, focused, fallback=[s for s in chain if s != focused])

    def _ship(self, ctx: BaselineJobCtx, target: SiteId, fallback: List[SiteId]) -> None:
        payload = self.pack_ctx(ctx)
        payload["fallback"] = fallback
        self.trace("focused.ship", job=ctx.job, target=target, fallback=fallback)
        self.send_to(target, MSG_OFFLOAD, payload, size=estimate_code_size(ctx.dag))

    def _h_offload(self, msg: Message) -> None:
        ctx = self.unpack_ctx(msg.payload)
        fallback: List[SiteId] = list(msg.payload["fallback"])
        if self.try_commit_whole_dag(ctx):
            self.decide(ctx, JobOutcome.ACCEPTED_DISTRIBUTED, hosts=[self.sid])
            return
        while fallback:
            nxt = fallback.pop(0)
            if nxt != self.sid:
                payload = self.pack_ctx(ctx)
                payload["fallback"] = fallback
                self.send_to(nxt, MSG_OFFLOAD, payload, size=estimate_code_size(ctx.dag))
                return
        self.decide(ctx, JobOutcome.REJECTED_VALIDATION)
