"""``repro.obs`` — zero-cost-when-off telemetry for the whole stack.

The observability layer the scale roadmap items lean on: counters, gauges,
reservoir/percentile timers (p50/p95/p99) and simulated-time **spans** for
the protocol phases (enroll, map, validate, execute, retransmission),
plus exporters (Chrome trace-event JSON, flat metrics JSONL) and the live
campaign dashboard.

The contract, in order of importance:

1. **Off is invisible.** ``ExperimentConfig(telemetry=False)`` — the
   default — must leave every identity golden byte-identical. Hot paths
   guard on plain boolean mirrors (``obs_on``) exactly like the tracer's
   ``trace_on``; the shared :data:`NULL_TELEMETRY` never mutates state.
2. **On is cheap.** <10% macro throughput overhead, gated by
   ``benchmarks/bench_e9_hotpath.py --check`` (the ``macro_obs``
   scenario).
3. **On is deterministic.** Reservoir RNGs are locally seeded; a
   fixed-seed run reports bit-identical percentiles, and telemetry never
   feeds back into simulation behaviour.

Entry points: ``ExperimentConfig(telemetry=True)``, ``rtds trace``,
``rtds stats``, ``rtds profile --backend telemetry``. See DESIGN.md
"Observability model".
"""

from repro.obs.dashboard import CampaignDashboard
from repro.obs.export import (
    chrome_trace,
    metrics_jsonl,
    metrics_records,
    parse_metrics_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_jsonl,
)
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    ReservoirTimer,
    Span,
    Telemetry,
    percentile,
    percentiles,
    rss_mb,
    current_rss_mb,
)

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "ReservoirTimer",
    "Span",
    "percentile",
    "percentiles",
    "rss_mb",
    "current_rss_mb",
    "chrome_trace",
    "write_chrome_trace",
    "metrics_jsonl",
    "metrics_records",
    "write_metrics_jsonl",
    "parse_metrics_jsonl",
    "validate_chrome_trace",
    "CampaignDashboard",
]
