"""Live stderr campaign dashboard: per-cell lines + throughput/ETA footer.

:class:`CampaignDashboard` is a drop-in :data:`~repro.experiments.parallel.ProgressFn`
— the campaign runtime calls it from the *parent* process as each cell
completes (under ``--jobs`` pools included, since ``as_completed`` fires
in the coordinator), so dashboard state needs no cross-process plumbing.

Each completed cell prints one line (status, key, label, seed, GR, cell
wall time) followed by a footer::

    12/48 cells | 3.1 cells/s | elapsed 3.9s | eta 11.6s | GR 0.9571

Rates come from the dashboard's own gauges (``campaign.cells_per_sec``,
``campaign.eta_sec``, ...), registered on a :class:`Telemetry` so ``rtds
stats`` and tests read the same numbers the human saw. Every line is
flushed: pool workers may share the same stderr pipe, and an unflushed
parent buffer interleaves with worker tracebacks.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Optional, TextIO

from repro.obs.telemetry import Telemetry

__all__ = ["CampaignDashboard"]


class CampaignDashboard:
    """ProgressFn with live cells/sec, elapsed and ETA accounting."""

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        obs: Optional[Telemetry] = None,
        clock: Any = time.perf_counter,
    ) -> None:
        """``stream`` defaults to stderr; ``clock`` is injectable for tests."""
        self.stream = stream if stream is not None else sys.stderr
        self.obs = obs if obs is not None else Telemetry(enabled=True)
        self.clock = clock
        self.started_at: Optional[float] = None
        self.done = 0
        self.ok = 0
        self.failed = 0
        self._gr_sum = 0.0
        self._gr_count = 0

    def __call__(self, result: Any, done: int, total: int) -> None:
        """Record one completed cell and repaint the progress footer."""
        now = self.clock()
        if self.started_at is None:
            self.started_at = now
            self.obs.gauge("campaign.total_cells", total)
        self.done = done
        gr = result.metrics.get("guarantee_ratio") if result.metrics else None
        if result.status == "ok":
            self.ok += 1
        else:
            self.failed += 1
            self.obs.inc("campaign.cells_failed")
        if gr is not None:
            self._gr_sum += gr
            self._gr_count += 1
        elapsed = max(now - self.started_at, 1e-9)
        # the first cell's wall time is inside result.elapsed even though
        # the dashboard clock starts at its completion; fold it back in so
        # the first footer's rate is not infinite
        if done == 1:
            elapsed = max(elapsed, result.elapsed, 1e-9)
        rate = done / elapsed
        eta = (total - done) / rate if rate > 0 else float("inf")
        self.obs.gauge("campaign.cells_done", done)
        self.obs.gauge("campaign.cells_per_sec", rate)
        self.obs.gauge("campaign.elapsed_sec", elapsed)
        self.obs.gauge("campaign.eta_sec", eta)
        self.obs.observe("campaign.cell_elapsed", result.elapsed)

        tail = f"GR={gr:.4f}" if gr is not None else f"error: {result.error}"
        print(
            f"[{done}/{total}] {result.status:>6}  cell {result.key}  "
            f"{result.label} seed={result.seed}  {tail}  ({result.elapsed:.2f}s)",
            file=self.stream,
            flush=True,
        )
        print(self.footer(total), file=self.stream, flush=True)

    def footer(self, total: int) -> str:
        """The one-line live summary rendered after every cell."""
        rate = self.obs.gauges.get("campaign.cells_per_sec", 0.0)
        elapsed = self.obs.gauges.get("campaign.elapsed_sec", 0.0)
        eta = self.obs.gauges.get("campaign.eta_sec", float("inf"))
        eta_s = f"{eta:.1f}s" if eta != float("inf") else "?"
        parts = [
            f"{self.done}/{total} cells",
            f"{rate:.1f} cells/s",
            f"elapsed {elapsed:.1f}s",
            f"eta {eta_s}",
        ]
        if self._gr_count:
            parts.append(f"GR {self._gr_sum / self._gr_count:.4f}")
        if self.failed:
            parts.append(f"{self.failed} FAILED")
        return "  " + " | ".join(parts)
