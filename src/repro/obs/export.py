"""Telemetry exporters: Chrome trace-event JSON and flat metrics JSONL.

Two output formats, both produced from one :class:`~repro.obs.telemetry.Telemetry`:

* :func:`chrome_trace` — the Chrome/Perfetto trace-event format
  (``{"traceEvents": [...]}``). Every closed sim-time span becomes one
  complete ("X") event; sites map to Perfetto *threads* (one lane per
  site, named by metadata events), so a paper run renders as a per-site
  timeline of enroll/validate/execute phases. Simulated time maps to
  microseconds 1:1 (the viewer only needs ordering and proportion).
  ``load <file>`` in https://ui.perfetto.dev or ``chrome://tracing``.
* :func:`metrics_jsonl` — one flat JSON object per line: every counter,
  gauge and timer summary (count/mean/min/max/p50/p95/p99) with a ``kind``
  discriminator. Greppable, ``jq``-able, diffable; the ``rtds stats``
  command renders the same records as a table.

:func:`validate_chrome_trace` is the schema check the CI telemetry smoke
runs — it asserts the structural invariants the viewers rely on, not just
well-formed JSON.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterable, List

from repro.obs.telemetry import Telemetry

__all__ = [
    "chrome_trace",
    "metrics_jsonl",
    "validate_chrome_trace",
    "parse_metrics_jsonl",
]

#: sim-time unit -> trace microseconds. 1:1 keeps durations readable
#: (a 3.0-time-unit validate phase shows as 3 us) and exact for floats.
_US_PER_UNIT = 1.0

#: Perfetto orders lanes by tid; the control lane (spans with no site)
#: sorts after every real site.
_CONTROL_TID = 10_000_000


def _span_events(obs: Telemetry, pid: int = 1) -> List[Dict[str, Any]]:
    """Spans -> "X" (complete) trace events, one lane per site."""
    events: List[Dict[str, Any]] = []
    seen_tids: Dict[int, str] = {}
    for span in obs.spans:
        tid = _CONTROL_TID if span.site is None else int(span.site)
        seen_tids.setdefault(
            tid, "control" if span.site is None else f"site {span.site}"
        )
        args: Dict[str, Any] = {"ok": span.ok}
        if span.key is not None:
            args["key"] = span.key
        if span.labels:
            args.update(span.labels)
        events.append(
            {
                "name": span.category,
                "cat": span.category.split(".", 1)[0],
                "ph": "X",
                "ts": span.t0 * _US_PER_UNIT,
                "dur": span.duration * _US_PER_UNIT,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    # thread-name metadata events give the lanes human names in the viewer
    meta = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": label},
        }
        for tid, label in sorted(seen_tids.items())
    ]
    return meta + events


def _counter_events(obs: Telemetry, pid: int = 1) -> List[Dict[str, Any]]:
    """Final counter values as end-of-trace "C" events (viewer tracks)."""
    if not obs.counters:
        return []
    t_end = max((s.t1 for s in obs.spans), default=0.0) * _US_PER_UNIT
    return [
        {
            "name": name,
            "ph": "C",
            "ts": t_end,
            "pid": pid,
            "args": {name: value},
        }
        for name, value in sorted(obs.counters.items())
    ]


def chrome_trace(obs: Telemetry, pid: int = 1) -> Dict[str, Any]:
    """The full trace-event document for one run (JSON-serialisable)."""
    return {
        "traceEvents": _span_events(obs, pid) + _counter_events(obs, pid),
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs",
            "spans": len(obs.spans),
            "open_spans": [f"{cat}:{key}" for cat, key in obs.open_spans()],
        },
    }


def write_chrome_trace(obs: Telemetry, path: str, pid: int = 1) -> int:
    """Write :func:`chrome_trace` to ``path``; returns the event count."""
    doc = chrome_trace(obs, pid)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return len(doc["traceEvents"])


def _finite(value: float) -> Any:
    """NaN/inf -> None (JSON has no NaN; empty-stream stats serialise null)."""
    return value if math.isfinite(value) else None


def metrics_records(obs: Telemetry) -> List[Dict[str, Any]]:
    """Flat records for every counter, gauge and timer (sorted by name)."""
    records: List[Dict[str, Any]] = []
    for name, value in sorted(obs.counters.items()):
        records.append({"kind": "counter", "name": name, "value": value})
    for name, value in sorted(obs.gauges.items()):
        records.append({"kind": "gauge", "name": name, "value": _finite(value)})
    for name, timer in sorted(obs.timers.items()):
        rec: Dict[str, Any] = {"kind": "timer", "name": name}
        rec.update({k: _finite(v) for k, v in timer.summary().items()})
        rec["count"] = timer.count  # keep the count an int, not a float
        records.append(rec)
    return records


def metrics_jsonl(obs: Telemetry) -> str:
    """The metrics stream as JSONL text (one record per line)."""
    return "".join(
        json.dumps(rec, sort_keys=True) + "\n" for rec in metrics_records(obs)
    )


def write_metrics_jsonl(obs: Telemetry, path: str) -> int:
    """Write :func:`metrics_jsonl` to ``path``; returns the record count."""
    text = metrics_jsonl(obs)
    with open(path, "w") as fh:
        fh.write(text)
    return text.count("\n")


def parse_metrics_jsonl(lines: Iterable[str]) -> List[Dict[str, Any]]:
    """Parse a metrics JSONL stream back to records (blank-line tolerant)."""
    records = []
    for line in lines:
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def validate_chrome_trace(doc: Dict[str, Any]) -> List[str]:
    """Structural check of a trace document; returns problems (empty = ok).

    Asserts the invariants Perfetto/chrome relies on: a ``traceEvents``
    list; every event carries ``name``/``ph``/``pid``; "X" events carry
    numeric non-negative ``ts`` and ``dur``; metadata events name their
    threads. The CI smoke fails on any returned problem.
    """
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        for field in ("name", "ph", "pid"):
            if field not in ev:
                problems.append(f"{where}: missing {field!r}")
        ph = ev.get("ph")
        if ph == "X":
            for field in ("ts", "dur", "tid"):
                value = ev.get(field)
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(f"{where}: bad {field!r}={value!r}")
        elif ph == "M":
            if not ev.get("args", {}).get("name"):
                problems.append(f"{where}: metadata event without args.name")
        elif ph == "C":
            if not isinstance(ev.get("args"), dict):
                problems.append(f"{where}: counter event without args")
        elif ph is not None:
            problems.append(f"{where}: unsupported phase {ph!r}")
    return problems
