"""The telemetry registry: counters, gauges, percentile timers, spans.

One :class:`Telemetry` instance observes one experiment (the runner builds
it from ``ExperimentConfig.telemetry`` and attaches it to the network the
way the tracer is attached). Four primitive kinds:

* **counters** — monotonically increasing event counts
  (``obs.inc("protocol.retransmit.enroll")``);
* **gauges** — last-write-wins scalars (``obs.gauge("run.rss_mb", 120.4)``);
* **timers** — bounded-memory percentile estimators
  (:class:`ReservoirTimer`, Vitter's algorithm R): every ``observe`` feeds
  an exact count/sum/min/max plus a fixed-size uniform sample the
  p50/p95/p99 come from. The reservoir RNG is seeded per timer name, so a
  fixed-seed run reports bit-identical percentiles;
* **spans** — *simulated-time* intervals ``[t0, t1]`` labelled with a
  category, a key (usually the job id) and a site. Protocol phases
  (enroll, map, validate, execute, retransmission) are spans; the Chrome
  trace exporter (:mod:`repro.obs.export`) turns them into a
  Perfetto-viewable timeline, one lane per site. Closing a span also feeds
  its duration to the same-named timer, so phase percentiles are free.

Wall-clock measurement uses :meth:`Telemetry.timeit`, an exception-safe
context manager whose nesting builds ``outer/inner`` timer names.

**The overhead contract** (DESIGN.md "Observability model"): telemetry off
must be invisible. Every hot call site guards on a plain boolean mirror
(``obs_on``, synced like ``trace_on``), the disabled singleton
:data:`NULL_TELEMETRY` never mutates state, and nothing here ever touches
simulation behaviour — telemetry is an oracle observer, never an input.
"""

from __future__ import annotations

import math
import random
import time
import zlib
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.types import SiteId, Time

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "ReservoirTimer",
    "Span",
    "percentiles",
    "percentile",
]

#: default reservoir capacity: 512 samples bound memory while keeping the
#: p99 of campaign-sized streams within a few percent of exact
DEFAULT_RESERVOIR = 512


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100]).

    NaN for an empty stream; the single-sample stream returns that sample
    for every ``q`` (the degenerate distribution's every quantile).
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    vals = sorted(values)
    if not vals:
        return float("nan")
    # nearest-rank: ceil(q/100 * n), 1-indexed, clamped to the extremes
    rank = max(1, min(len(vals), math.ceil(q / 100.0 * len(vals))))
    return float(vals[rank - 1])


def percentiles(
    values: Sequence[float], qs: Sequence[float] = (50.0, 95.0, 99.0)
) -> Dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` (nearest-rank, NaN-safe).

    The one percentile routine every consumer shares — the latency
    breakdown, the protocol stats, ``rtds stats`` and the reservoir timers
    all report quantiles through here, so they cannot disagree on method.
    """
    srt = sorted(values)
    return {f"p{q:g}": percentile(srt, q) for q in qs}


class ReservoirTimer:
    """Bounded-memory percentile estimator (uniform reservoir sampling).

    Exact ``count``/``sum``/``min``/``max`` over the whole stream; the
    percentiles come from a fixed-size uniform sample maintained with
    Vitter's algorithm R. The RNG is locally seeded, so two runs feeding
    the same stream report identical percentiles — determinism is part of
    the repo's identity contract even for observability.
    """

    __slots__ = (
        "capacity", "count", "total", "min", "max", "_sample", "_random",
        "_w_count", "_w_total", "_w_min", "_w_max", "_w_sample",
    )

    def __init__(self, capacity: int = DEFAULT_RESERVOIR, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError(f"reservoir capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._sample: List[float] = []
        # pre-bound C-level uniform: the steady-state observe() draws one
        # float per sample, and randrange()'s pure-Python integer path is
        # too slow for the per-message streams (E9 macro_obs gate)
        self._random = random.Random(seed).random
        # window state for :meth:`snapshot` — interval-local percentiles
        # (the E12 soak's per-interval p99s). None until the first
        # snapshot() call arms it, so non-windowed timers — the common
        # case, every per-message stream — pay one predictable-false
        # branch per observe, nothing more.
        self._w_count = 0
        self._w_total = 0.0
        self._w_min = float("inf")
        self._w_max = float("-inf")
        self._w_sample: Optional[List[float]] = None

    def observe(self, value: float) -> None:
        """Feed one sample (algorithm R: O(1), bounded memory)."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        sample = self._sample
        if len(sample) < self.capacity:
            sample.append(value)
        else:
            j = int(self._random() * self.count)
            if j < self.capacity:
                sample[j] = value
        wsample = self._w_sample
        if wsample is not None:
            self._w_count += 1
            self._w_total += value
            if value < self._w_min:
                self._w_min = value
            if value > self._w_max:
                self._w_max = value
            if len(wsample) < self.capacity:
                wsample.append(value)
            else:
                j = int(self._random() * self._w_count)
                if j < self.capacity:
                    wsample[j] = value

    def snapshot(self, qs: Sequence[float] = (50.0, 95.0, 99.0)) -> Dict[str, float]:
        """Window summary since the previous :meth:`snapshot`, then reset.

        The first call arms windowing and reports the cumulative stream so
        far (the window since construction); every later call reports only
        the samples observed since the previous call. Cumulative state
        (``count``/``total``/:meth:`percentiles`) is untouched — a soak
        can read flat interval p99s *and* the whole-run summary from one
        timer. Interval-empty windows report count 0 and NaN quantiles.
        """
        if self._w_sample is None:
            # arming call: the window-so-far IS the cumulative stream
            out = {
                "count": float(self.count),
                "mean": self.mean,
                "min": self.min if self.count else float("nan"),
                "max": self.max if self.count else float("nan"),
            }
            out.update(percentiles(self._sample, qs))
        else:
            n = self._w_count
            out = {
                "count": float(n),
                "mean": self._w_total / n if n else float("nan"),
                "min": self._w_min if n else float("nan"),
                "max": self._w_max if n else float("nan"),
            }
            out.update(percentiles(self._w_sample, qs))
        self._w_count = 0
        self._w_total = 0.0
        self._w_min = float("inf")
        self._w_max = float("-inf")
        self._w_sample = []
        return out

    @property
    def mean(self) -> float:
        """Exact stream mean (NaN for an empty stream)."""
        return self.total / self.count if self.count else float("nan")

    def percentiles(self, qs: Sequence[float] = (50.0, 95.0, 99.0)) -> Dict[str, float]:
        """Reservoir-estimated quantiles (exact while count <= capacity)."""
        return percentiles(self._sample, qs)

    def summary(self) -> Dict[str, float]:
        """One flat dict: count, mean, min, max, p50/p95/p99."""
        out = {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.min if self.count else float("nan"),
            "max": self.max if self.count else float("nan"),
        }
        out.update(self.percentiles())
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReservoirTimer(count={self.count}, mean={self.mean:.4g})"


class Span:
    """One closed simulated-time interval (slotted; traces hold thousands).

    ``category`` is the span taxonomy name (``phase.enroll``, ...), ``key``
    identifies the instance (usually the job id), ``site`` the lane it
    renders on, ``ok`` whether the phase ended in success, and ``labels``
    ride into the exporter's ``args``.
    """

    __slots__ = ("category", "key", "site", "t0", "t1", "ok", "labels")

    def __init__(
        self,
        category: str,
        key: Any,
        site: Optional[SiteId],
        t0: Time,
        t1: Time,
        ok: bool = True,
        labels: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.category = category
        self.key = key
        self.site = site
        self.t0 = t0
        self.t1 = t1
        self.ok = ok
        self.labels = labels

    @property
    def duration(self) -> Time:
        """``t1 - t0`` in simulated time units."""
        return self.t1 - self.t0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = "" if self.ok else " FAILED"
        return (
            f"Span({self.category} key={self.key} @{self.site} "
            f"[{self.t0:.3f}, {self.t1:.3f}]{flag})"
        )


class Telemetry:
    """Registry of counters, gauges, percentile timers and sim-time spans.

    ``enabled=False`` (the :data:`NULL_TELEMETRY` singleton) turns every
    method into an early-return no-op; hot call sites additionally guard
    on a mirror boolean so the disabled path costs one branch, exactly
    like the tracer's ``trace_on`` pattern.
    """

    def __init__(
        self,
        enabled: bool = True,
        seed: int = 0,
        reservoir: int = DEFAULT_RESERVOIR,
    ) -> None:
        self.enabled = bool(enabled)
        self.seed = seed
        self.reservoir = reservoir
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.timers: Dict[str, ReservoirTimer] = {}
        self.spans: List[Span] = []
        #: (category, key) -> (t0, site, labels) of spans begun, not closed
        self._open: Dict[Tuple[str, Any], Tuple[Time, Optional[SiteId], Optional[Dict]]] = {}
        #: wall-clock nesting stack of :meth:`timeit` names
        self._stack: List[str] = []

    # -- counters / gauges -------------------------------------------------

    def inc(self, name: str, n: float = 1.0) -> None:
        """Add ``n`` to counter ``name`` (created at 0)."""
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0.0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` (last write wins)."""
        if not self.enabled:
            return
        self.gauges[name] = float(value)

    # -- timers ------------------------------------------------------------

    def timer(self, name: str) -> ReservoirTimer:
        """The named timer, created on first use (per-name seeded RNG)."""
        t = self.timers.get(name)
        if t is None:
            # per-name seed: crc32 (not hash(), which PYTHONHASHSEED
            # randomizes) so reservoirs are independent streams fully
            # determined by (telemetry seed, timer name) across processes
            t = self.timers[name] = ReservoirTimer(
                self.reservoir, seed=(zlib.crc32(name.encode()) ^ self.seed) & 0x7FFFFFFF
            )
        return t

    def observe(self, name: str, value: float) -> None:
        """Feed one sample to timer ``name``."""
        if not self.enabled:
            return
        self.timer(name).observe(value)

    # -- spans ---------------------------------------------------------------

    def span(
        self,
        category: str,
        t0: Time,
        t1: Time,
        site: Optional[SiteId] = None,
        key: Any = None,
        ok: bool = True,
        **labels: Any,
    ) -> None:
        """Record one already-closed sim-time span (and time its duration)."""
        if not self.enabled:
            return
        self.spans.append(Span(category, key, site, t0, t1, ok, labels or None))
        self.timer(category).observe(t1 - t0)

    def span_begin(
        self, category: str, key: Any, t: Time, site: Optional[SiteId] = None, **labels: Any
    ) -> None:
        """Open span ``(category, key)`` at sim-time ``t``.

        Re-beginning an open span overwrites its start (last writer wins)
        — retransmission rounds restart their phase clock explicitly.
        """
        if not self.enabled:
            return
        self._open[(category, key)] = (t, site, labels or None)

    def span_end(self, category: str, key: Any, t: Time, ok: bool = True) -> Optional[Span]:
        """Close span ``(category, key)`` at ``t``; tolerant no-op if it was
        never opened (teardown paths may close speculatively)."""
        if not self.enabled:
            return None
        opened = self._open.pop((category, key), None)
        if opened is None:
            return None
        t0, site, labels = opened
        span = Span(category, key, site, t0, t, ok, labels)
        self.spans.append(span)
        self.timer(category).observe(t - t0)
        return span

    def open_spans(self) -> List[Tuple[str, Any]]:
        """Keys of spans begun but not yet ended (leak diagnostics)."""
        return sorted(self._open, key=repr)

    # -- wall-clock measurement --------------------------------------------

    @contextmanager
    def timeit(self, name: str) -> Iterator[None]:
        """Exception-safe wall-clock timer; nesting builds ``outer/inner``.

        The duration lands in the timer named by the full nested path. An
        exception still records the duration, increments
        ``<path>.errors``, pops the stack, and propagates — a failing
        phase can never corrupt the nesting of its parent.
        """
        if not self.enabled:
            yield
            return
        self._stack.append(name)
        path = "/".join(self._stack)
        t0 = time.perf_counter()
        try:
            yield
        except BaseException:
            self.inc(path + ".errors")
            raise
        finally:
            self.observe(path, time.perf_counter() - t0)
            self._stack.pop()

    # -- resource sampling ---------------------------------------------------

    def sample_rss(self, name: str = "run.rss_mb") -> Optional[float]:
        """Gauge the process's peak RSS in MB (None where unsupported)."""
        if not self.enabled:
            return None
        rss = rss_mb()
        if rss is not None:
            self.gauge(name, rss)
        return rss

    # -- export --------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict view of everything (the metrics JSONL's source)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "timers": {name: t.summary() for name, t in self.timers.items()},
            "spans": len(self.spans),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.enabled:
            return "Telemetry(disabled)"
        return (
            f"Telemetry(counters={len(self.counters)}, gauges={len(self.gauges)}, "
            f"timers={len(self.timers)}, spans={len(self.spans)})"
        )


def rss_mb() -> Optional[float]:
    """Current peak RSS of this process in MB (None where unsupported).

    Linux reports ``ru_maxrss`` in KB, macOS in bytes; both are covered.
    Used by the runner's end-of-run sample and the per-cell campaign
    snapshot — the numbers the E12 soak roadmap item tracks over time.
    """
    try:
        import resource
        import sys

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if sys.platform == "darwin":  # pragma: no cover - linux CI
            return peak / (1024.0 * 1024.0)
        return peak / 1024.0
    except (ImportError, ValueError):  # pragma: no cover - non-posix
        return None


def current_rss_mb() -> Optional[float]:
    """*Current* (not peak) RSS of this process in MB, None if unreadable.

    ``ru_maxrss`` is a high-water mark and can never go down, which makes
    it useless for the E12 memory-flatness contract — a soak that balloons
    early and then leaks nothing would still show a flat peak. This reads
    the live resident set from ``/proc/self/statm`` (Linux); elsewhere it
    falls back to the peak, the best available upper bound.
    """
    try:
        with open("/proc/self/statm", "rb") as f:
            fields = f.read().split()
        import resource

        page = resource.getpagesize()
        return int(fields[1]) * page / (1024.0 * 1024.0)
    except (OSError, ValueError, ImportError, IndexError):
        return rss_mb()


#: The shared disabled instance: what every hot path holds when telemetry
#: is off. Its methods early-return before touching any state, so one
#: instance is safely shared by every site, network and engine.
NULL_TELEMETRY = Telemetry(enabled=False)
