"""Non-preemptive insertion-based feasibility tests.

Two tests back the protocol:

* :func:`try_schedule_dag_locally` — the §5 **local test**: schedule the
  whole DAG on this one site, in topological order, each task at the
  earliest gap after its predecessors, and accept iff everything finishes by
  the job deadline. (On a single site there are no communication delays.)

* :func:`try_schedule_window_tasks` — the §10 **local satisfiability** test
  used during Trial-Mapping validation: given a set of tasks with absolute
  windows ``[r(t), d(t)]`` and durations ``c(t)``, find non-overlapping
  slots inside the windows. Tasks are inserted in EDF order (deadline, then
  release, then id) — optimal for the nested/agreeable windows the
  adjustment step produces, and the natural heuristic otherwise.

Both return concrete :class:`Reservation` lists (or ``None``) so a caller
can *commit* exactly what was tested — this is how validation endorsements
stay valid until execution (see DESIGN.md "Lock semantics").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.graphs.dag import Dag
from repro.sched.intervals import BusyTimeline, Reservation
from repro.sched.soa import fit_and_hold
from repro.types import JobId, TaskId, Time


class WindowTask:
    """A task with an absolute execution window (validation input).

    ``release``/``deadline`` are the adjusted r(t), d(t) of the
    Trial-Mapping; ``duration`` is the raw complexity c(t) (execution on an
    identical machine takes c, the surplus scaling was only a mapping-time
    estimate).

    Hand-rolled ``__slots__`` class: validation constructs one per task per
    tested logical processor, which puts construction cost on the protocol
    hot path. Treat instances as immutable.
    """

    __slots__ = ("job", "task", "duration", "release", "deadline")

    def __init__(
        self, job: JobId, task: TaskId, duration: Time, release: Time, deadline: Time
    ) -> None:
        if duration <= 0:
            raise ValueError(f"task {task!r}: duration must be > 0")
        self.job = job
        self.task = task
        self.duration = duration
        self.release = release
        self.deadline = deadline

    @property
    def laxity(self) -> Time:
        return (self.deadline - self.release) - self.duration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WindowTask(job={self.job!r}, task={self.task!r}, "
            f"duration={self.duration!r}, release={self.release!r}, "
            f"deadline={self.deadline!r})"
        )


def try_schedule_dag_locally(
    timeline: BusyTimeline,
    dag: Dag,
    job: JobId,
    release: Time,
    deadline: Time,
    not_before: Time,
    speed: float = 1.0,
) -> Optional[List[Reservation]]:
    """The §5 local test. Returns reservations or ``None`` if infeasible.

    Tasks are placed in (deterministic) topological order; each starts no
    earlier than ``max(release, not_before, finish of its predecessors)``
    at the earliest gap of the (scratch) timeline, and the whole job must
    finish by ``deadline``. The input ``timeline`` is not modified.
    ``speed`` scales durations to ``c/speed`` (§13 uniform machines)
    without materializing a rescaled DAG.
    """
    scale = abs(speed - 1.0) > 1e-12
    starts, ends = timeline.scratch_arrays()
    finish: Dict[TaskId, Time] = {}
    placed: List[Tuple[Time, Time, TaskId, Time]] = []
    floor = max(release, not_before)
    for tid in dag.topological_order():
        ready = floor
        for p in dag.predecessors(tid):
            ready = max(ready, finish[p])
        c = dag.complexity(tid)
        if scale:
            c = c / speed
        start = fit_and_hold(starts, ends, c, ready, deadline)
        if start is None:
            return None
        finish[tid] = start + c
        placed.append((start, c, tid, ready))
    return [
        Reservation(s, s + c, job, tid, release=ready, deadline=deadline)
        for (s, c, tid, ready) in placed
    ]


def edf_order(tasks: Sequence[WindowTask]) -> List[WindowTask]:
    """Deterministic EDF ordering: (deadline, release, task id repr)."""
    return sorted(tasks, key=lambda t: (t.deadline, t.release, repr(t.task)))


def llf_order(tasks: Sequence[WindowTask]) -> List[WindowTask]:
    """Least-laxity-first ordering: tightest windows placed first.

    An alternative §10 insertion policy: tasks with the least slack get
    first pick of the gaps, which can rescue sets where a tight window
    hides behind an early deadline. Deterministic tie-breaks as EDF.
    """
    return sorted(tasks, key=lambda t: (t.laxity, t.deadline, repr(t.task)))


_ORDERS = {"edf": edf_order, "llf": llf_order}


def try_schedule_window_tasks(
    timeline: BusyTimeline,
    tasks: Sequence[WindowTask],
    not_before: Time,
    order: str = "edf",
) -> Optional[List[Reservation]]:
    """The §10 local-satisfiability test. Returns slots or ``None``.

    Every task must fit entirely inside ``[max(release, not_before),
    deadline]``. Insertion order is ``"edf"`` (default) or ``"llf"``;
    the input timeline is not modified.
    """
    try:
        ordering = _ORDERS[order]
    except KeyError:
        raise ValueError(f"unknown insertion order {order!r}; known: {sorted(_ORDERS)}") from None
    starts, ends = timeline.scratch_arrays()
    placed: List[Tuple[Time, WindowTask]] = []
    for t in ordering(tasks):
        lo = max(t.release, not_before)
        start = fit_and_hold(starts, ends, t.duration, lo, t.deadline)
        if start is None:
            return None
        placed.append((start, t))
    return [
        Reservation(
            s, s + t.duration, t.job, t.task, release=t.release, deadline=t.deadline
        )
        for (s, t) in placed
    ]


def slack_profile(
    timeline: BusyTimeline, tasks: Sequence[WindowTask], not_before: Time
) -> Optional[List[Tuple[TaskId, Time]]]:
    """Per-task slack (window end minus actual finish) of the EDF insertion.

    Diagnostic companion of :func:`try_schedule_window_tasks`; ``None`` when
    infeasible. Used by the ablation benches to quantify how much margin the
    ACS-diameter over-estimation leaves.
    """
    slots = try_schedule_window_tasks(timeline, tasks, not_before)
    if slots is None:
        return None
    by_key = {(r.job, r.task): r for r in slots}
    return [
        (t.task, t.deadline - by_key[(t.job, t.task)].end) for t in edf_order(tasks)
    ]
