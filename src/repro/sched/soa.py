"""Structure-of-arrays feasibility probing.

The admission hot path (local test, trial-mapping probes, validation
endorsements) spends its time asking one question thousands of times per
second: *where is the earliest gap of duration ``c`` inside ``[r, d]`` on
this timeline, given the placements already tentatively made?* The
object-based route — copy the :class:`~repro.sched.intervals.BusyTimeline`,
build a ``Reservation`` per probe, re-run the overlap check on insert —
pays for attribute access and object construction on every step.

This module is the flat core those tests now share: probing and tentative
insertion operate directly on parallel ``starts``/``ends`` float lists
(obtained via ``BusyTimeline.scratch_arrays()``), and ``Reservation``
objects are built only for placements that survive the whole test.

Bit-for-bit contract: :func:`fit_and_hold` performs *exactly* the
arithmetic of ``BusyTimeline.earliest_fit`` followed by
``BusyTimeline.reserve`` — same EPS comparisons, same bisect insertion
point — so every placement it returns is byte-identical to what the
object path produced. The identity goldens gate this.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Optional

from repro.errors import SchedulingError
from repro.types import EPS, Time


def fit_and_hold(
    starts: List[Time],
    ends: List[Time],
    duration: Time,
    release: Time,
    deadline: Time,
) -> Optional[Time]:
    """Earliest fit of ``duration`` in ``[release, deadline]`` — and take it.

    On success the slot ``[s, s+duration)`` is inserted into the parallel
    arrays (keeping them sorted) and ``s`` is returned; on failure the
    arrays are untouched and ``None`` is returned. The arrays are the
    caller's scratch state, so "insert" here is a tentative hold, not a
    commitment.
    """
    if duration <= EPS:
        raise SchedulingError(f"duration must be > 0, got {duration}")
    if release + duration > deadline + EPS:
        return None
    n = len(starts)
    s = release
    i = bisect_right(starts, s + EPS)
    if i > 0 and ends[i - 1] > s + EPS:
        s = ends[i - 1]
    while True:
        if s + duration > deadline + EPS:
            return None
        if i < n and starts[i] < s + duration - EPS:
            s = ends[i]
            i += 1
            continue
        break
    # Same insertion point as BusyTimeline.reserve: the slot is free, so
    # no existing start lies in (s, s+EPS] and the EPS-shifted bisect
    # equals the exact one.
    j = bisect_right(starts, s + EPS)
    starts.insert(j, s)
    ends.insert(j, s + duration)
    return s
