"""Maximum bipartite matching — the validation "coupling" (paper §10).

The initiator receives, from each ACS site, the list of logical processors
it can endorse, and must decide whether some assignment covers *all*
logical processors: "it computes a maximum coupling (classical problem in
graph theory solved in polynomial time)". We implement Hopcroft–Karp
(O(E·sqrt(V))) and keep an exhaustive-search reference for the property
tests.

Left vertices = logical processors (must all be matched), right vertices =
candidate sites. Determinism: adjacency is iterated in sorted order, so the
same endorsements always yield the same permutation.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Set

INF = float("inf")


def hopcroft_karp(
    adjacency: Mapping[Hashable, Sequence[Hashable]],
) -> Dict[Hashable, Hashable]:
    """Maximum matching of the bipartite graph ``left -> iterable(right)``.

    Returns ``{left: right}`` for matched left vertices. Unmatched left
    vertices are absent. Right vertices may appear in at most one pair.
    """
    # Normalise and sort for determinism.
    lefts = sorted(adjacency, key=repr)
    adj: Dict[Hashable, List[Hashable]] = {
        u: sorted(set(adjacency[u]), key=repr) for u in lefts
    }
    match_l: Dict[Hashable, Hashable] = {}
    match_r: Dict[Hashable, Hashable] = {}
    dist: Dict[Hashable, float] = {}

    def bfs() -> bool:
        q: deque = deque()
        for u in lefts:
            if u not in match_l:
                dist[u] = 0.0
                q.append(u)
            else:
                dist[u] = INF
        reachable_free = False
        while q:
            u = q.popleft()
            for v in adj[u]:
                w = match_r.get(v)
                if w is None:
                    reachable_free = True
                elif dist[w] == INF:
                    dist[w] = dist[u] + 1
                    q.append(w)
        return reachable_free

    def dfs(u: Hashable) -> bool:
        for v in adj[u]:
            w = match_r.get(v)
            if w is None or (dist.get(w) == dist[u] + 1 and dfs(w)):
                match_l[u] = v
                match_r[v] = u
                return True
        dist[u] = INF
        return False

    while bfs():
        for u in lefts:
            if u not in match_l:
                dfs(u)
    return match_l


def maximum_matching_bruteforce(
    adjacency: Mapping[Hashable, Sequence[Hashable]],
) -> int:
    """Size of the maximum matching by exhaustive augmenting search.

    Exponential in the worst case — test oracle only (|left| <= ~10).
    """
    lefts = sorted(adjacency, key=repr)

    def best(i: int, used: Set[Hashable]) -> int:
        if i == len(lefts):
            return 0
        u = lefts[i]
        # Option 1: leave u unmatched.
        result = best(i + 1, used)
        # Option 2: match u to any free neighbour.
        for v in adjacency[u]:
            if v not in used:
                used.add(v)
                result = max(result, 1 + best(i + 1, used))
                used.remove(v)
        return result

    return best(0, set())


def perfect_left_matching(
    adjacency: Mapping[Hashable, Sequence[Hashable]],
) -> Optional[Dict[Hashable, Hashable]]:
    """Matching covering *every* left vertex, or ``None``.

    This is exactly the §10 acceptance rule: "if a subset of size |U| of
    the maximum coupling is found, it gives a permutation of the sites".
    """
    m = hopcroft_karp(adjacency)
    return m if len(m) == len(adjacency) else None
