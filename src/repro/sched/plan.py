"""The per-site scheduling plan.

Wraps a :class:`~repro.sched.intervals.BusyTimeline` with job-level
bookkeeping and the paper's *surplus* measure (§2): the idle fraction of an
observation window. We read the window forward from "now" — admission
decisions care about capacity that still exists, and a forward window makes
the surplus of an empty site exactly 1.0 as the worked example assumes
(I=0.5 means "half the upcoming window is already committed").
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import SchedulingError
from repro.sched.intervals import BusyTimeline, Reservation
from repro.types import EPS, JobId, SiteId, Time


class SchedulingPlan:
    """Accepted work of one site's compute processor.

    Parameters
    ----------
    site:
        Owning site id (diagnostics only).
    surplus_window:
        Length ``W`` of the observation window for surplus computation.
    speed:
        Computing power of the owning site (§13 heterogeneous sites).
        Reservations are committed already scaled to wall-clock time
        (``c / speed``), so the timeline itself is speed-agnostic; the
        speed is carried here so *work* accounting
        (:meth:`work_between`) can convert busy time back to executed
        complexity units.
    obs:
        Optional :class:`repro.obs.Telemetry`: commit/surplus accounting
        samples land there when it is enabled. ``None`` (the default)
        keeps the plan entirely untelemetered — the ``_obs_on`` mirror
        makes that path one boolean test.
    """

    def __init__(
        self,
        site: SiteId,
        surplus_window: Time = 200.0,
        speed: float = 1.0,
        obs=None,
    ) -> None:
        if surplus_window <= 0:
            raise SchedulingError(f"surplus_window must be > 0, got {surplus_window}")
        if speed <= 0:
            raise SchedulingError(f"speed must be > 0, got {speed}")
        self.site = site
        self.speed = speed
        self.surplus_window = surplus_window
        self.timeline = BusyTimeline()
        self._obs = obs
        self._obs_on = obs is not None and obs.enabled
        if self._obs_on:
            # pre-bound timer: surplus() runs on every enrollment decision,
            # so its telemetry path skips the registry lookup (E9 macro_obs
            # overhead gate); queries are counted from the timer's count
            self._obs_surplus = obs.timer("plan.surplus")
        #: job -> list of its reservations (insertion order)
        self._jobs: Dict[JobId, List[Reservation]] = {}
        #: bumped on every state change (commit / cancel / prune) — lets
        #: observers detect "plan changed" without diffing the timeline
        self.version = 0

    # -- surplus (paper §2) ----------------------------------------------------

    def surplus(self, now: Time, window: Optional[Time] = None) -> float:
        """Idle fraction of ``[now, now + W]``; 1.0 = fully idle.

        Clamped to [0, 1]; an over-committed plan (possible only through
        bugs) would raise in ``reserve`` long before this could go negative.
        """
        w = self.surplus_window if window is None else window
        idle = self.timeline.idle_time(now, now + w)
        value = min(1.0, max(0.0, idle / w))
        if self._obs_on:
            self._obs_surplus.observe(value)
        return value

    def busyness(self, now: Time, window: Optional[Time] = None) -> float:
        """``1 - surplus``; the §13 laxity-dispatching weight."""
        return 1.0 - self.surplus(now, window)

    # -- mutation ---------------------------------------------------------------

    def commit(self, reservations: List[Reservation]) -> None:
        """Insert a batch of reservations atomically.

        Either all succeed or the plan is left untouched (the batch is
        pre-checked on a scratch copy, then applied).
        """
        timeline = self.timeline
        inserted: List[Reservation] = []
        try:
            for r in reservations:
                timeline.reserve(r)
                inserted.append(r)
        except SchedulingError:
            # Roll the partial batch back: the plan must look untouched.
            for r in reversed(inserted):
                timeline.remove_exact(r)
            raise
        for r in reservations:
            self._jobs.setdefault(r.job, []).append(r)
        if reservations:
            self.version += 1
        if self._obs_on:
            self._obs.inc("plan.commits")
            self._obs.observe("plan.commit_batch", float(len(reservations)))

    def cancel_job(self, job: JobId) -> int:
        """Remove all reservations of ``job``; returns how many."""
        self._jobs.pop(job, None)
        n = self.timeline.release_key(job)
        if n:
            self.version += 1
        return n

    def prune_before(self, time: Time) -> int:
        """Forget finished history before ``time`` (memory hygiene)."""
        n = self.timeline.prune_before(time)
        if n:
            self.version += 1
            for job in list(self._jobs):
                kept = [r for r in self._jobs[job] if r.end > time + EPS]
                if kept:
                    self._jobs[job] = kept
                else:
                    del self._jobs[job]
        return n

    # -- queries ------------------------------------------------------------------

    def job_reservations(self, job: JobId) -> List[Reservation]:
        return list(self._jobs.get(job, ()))

    def jobs(self) -> List[JobId]:
        return sorted(self._jobs)

    def job_completion_time(self, job: JobId) -> Time:
        rs = self._jobs.get(job)
        if not rs:
            raise SchedulingError(f"site {self.site}: no reservations for job {job}")
        return max(r.end for r in rs)

    def load_between(self, start: Time, end: Time) -> float:
        """Busy fraction of [start, end) — the utilisation metric."""
        if end <= start + EPS:
            return 0.0
        return self.timeline.busy_time(start, end) / (end - start)

    def work_between(self, start: Time, end: Time) -> float:
        """Executed *complexity* units in [start, end): busy time × speed.

        On heterogeneous networks two sites with equal ``load_between``
        deliver different amounts of work; this is the capacity-weighted
        view (a speed-2 site fully busy for 10 time units did 20 units of
        work).
        """
        if end <= start + EPS:
            return 0.0
        return self.timeline.busy_time(start, end) * self.speed

    #: visible tails at or below this many reservations digest by value
    #: (cross-site sharing); longer ones digest by (site, version) — O(1)
    #: instead of O(n), and such busy sites virtually never collide anyway
    DIGEST_VALUE_MAX = 16

    def state_digest(self, horizon: Optional[Time] = None) -> tuple:
        """Hashable digest of the plan state feasibility probing sees.

        With a ``horizon`` (the earliest release of the windows about to
        be probed) only the *visible tail* — reservations ending after
        the horizon — enters the digest: finished history cannot affect
        forward probes, so two plans with equal tails answer every
        admission query at or past the horizon identically, *whatever*
        site they belong to. This is the basis of the admission cache's
        cross-site sharing: every site that is free during the job's
        windows digests to ``((), ())``, however different their pasts.

        Long tails fall back to the site-private ``(site, version)``
        pair, trading unlikely sharing for a constant-time digest. Any
        commit/cancel/prune changes both forms, so a cached decision can
        never outlive the state it was computed against; the two forms
        cannot collide (tuple-of-tuples vs (id, int)).
        """
        tl = self.timeline
        if horizon is None:
            if len(tl) <= self.DIGEST_VALUE_MAX:
                return tl.signature()
            return (self.site, self.version)
        if tl.tail_len(horizon) <= self.DIGEST_VALUE_MAX:
            return tl.tail_signature(horizon)
        return (self.site, self.version)

    def scratch_timeline(self) -> BusyTimeline:
        """A private copy for what-if feasibility tests."""
        return self.timeline.copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SchedulingPlan(site={self.site}, jobs={len(self._jobs)}, "
            f"reservations={len(self.timeline)})"
        )
