"""Busy-interval timeline with earliest-fit queries.

The central data structure of the local scheduler: a sorted sequence of
non-overlapping, labelled busy intervals ``[start, end)`` on one compute
processor. Insertion-based scheduling ("in-between tasks already accepted",
paper §5) reduces to :meth:`BusyTimeline.earliest_fit`: the earliest gap of a
given duration inside a release/deadline window.

Performance notes (profiled on the E1 workload): plans hold tens of live
reservations; ``bisect`` + list insert is faster than any tree below ~10^3
entries, and :meth:`prune_before` keeps plans short in long simulations.
All comparisons use the shared EPS tolerance so adjacent reservations
(end == next start) never collide through float noise.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.errors import SchedulingError
from repro.types import DATACLASS_SLOTS, EPS, JobId, TaskId, Time


@dataclass(frozen=True, **DATACLASS_SLOTS)
class Reservation:
    """One committed busy interval.

    ``job``/``task`` identify what runs; ``release``/``deadline`` record the
    window the slot was allocated inside (diagnostics + re-validation).
    """

    start: Time
    end: Time
    job: JobId
    task: TaskId
    release: Time = 0.0
    deadline: Time = float("inf")

    def __post_init__(self) -> None:
        if self.end <= self.start + EPS:
            raise SchedulingError(
                f"reservation for job {self.job} task {self.task!r}: "
                f"empty/negative interval [{self.start}, {self.end})"
            )

    @property
    def duration(self) -> Time:
        return self.end - self.start

    def key(self) -> Tuple[JobId, TaskId]:
        return (self.job, self.task)


class BusyTimeline:
    """Sorted, non-overlapping busy intervals on one processor.

    Structure-of-arrays layout: ``_starts`` and ``_ends`` are parallel
    primitive-float lists mirroring ``_items``. Feasibility probing
    (:mod:`repro.sched.soa`) walks the float arrays directly — no
    ``Reservation`` attribute access, no timeline copies — and the arrays
    double as the timeline's state signature for the admission cache.
    """

    __slots__ = ("_starts", "_ends", "_items")

    def __init__(self) -> None:
        self._starts: List[Time] = []
        self._ends: List[Time] = []
        self._items: List[Reservation] = []

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Reservation]:
        return iter(self._items)

    def reservations(self) -> List[Reservation]:
        """All reservations in start order (a copy)."""
        return list(self._items)

    def is_free(self, start: Time, end: Time) -> bool:
        """True iff [start, end) overlaps no reservation."""
        if end <= start + EPS:
            raise SchedulingError(f"empty window [{start}, {end})")
        starts = self._starts
        ends = self._ends
        i = bisect_right(starts, start + EPS)
        # predecessor may cover start; successor may begin before end
        if i > 0 and ends[i - 1] > start + EPS:
            return False
        if i < len(starts) and starts[i] < end - EPS:
            return False
        return True

    def earliest_fit(
        self, duration: Time, release: Time, deadline: Time
    ) -> Optional[Time]:
        """Earliest ``s >= release`` with ``[s, s+duration)`` free and
        ``s + duration <= deadline``; ``None`` if no such gap exists.
        """
        if duration <= EPS:
            raise SchedulingError(f"duration must be > 0, got {duration}")
        if release + duration > deadline + EPS:
            return None
        starts = self._starts
        ends = self._ends
        n = len(starts)
        s = release
        i = bisect_right(starts, s + EPS)
        if i > 0 and ends[i - 1] > s + EPS:
            # release falls inside a busy interval: earliest candidate is its end
            s = ends[i - 1]
        while True:
            if s + duration > deadline + EPS:
                return None
            if i < n and starts[i] < s + duration - EPS:
                # gap before next reservation too small; jump past it
                s = ends[i]
                i += 1
                continue
            return s

    def idle_windows(self, start: Time, end: Time) -> List[Tuple[Time, Time]]:
        """Maximal free sub-intervals of [start, end), in order."""
        if end <= start + EPS:
            return []
        out: List[Tuple[Time, Time]] = []
        starts = self._starts
        ends = self._ends
        n = len(starts)
        cur = start
        i = bisect_right(starts, start + EPS)
        if i > 0 and ends[i - 1] > start + EPS:
            cur = min(ends[i - 1], end)
        while cur < end - EPS:
            if i >= n or starts[i] >= end - EPS:
                out.append((cur, end))
                break
            ns = starts[i]
            if ns > cur + EPS:
                out.append((cur, min(ns, end)))
            cur = max(cur, min(ends[i], end))
            i += 1
        return out

    def idle_time(self, start: Time, end: Time) -> Time:
        """Total free time inside [start, end).

        Same walk as :meth:`idle_windows` with the interval list fused
        away — this runs on every enrollment answer (surplus), so the
        intermediate tuples are pure overhead there.
        """
        starts = self._starts
        ends = self._ends
        n = len(starts)
        total = 0.0
        cur = start
        i = bisect_right(starts, start + EPS)
        if i > 0 and ends[i - 1] > start + EPS:
            cur = min(ends[i - 1], end)
        while cur < end - EPS:
            if i >= n or starts[i] >= end - EPS:
                total += end - cur
                break
            ns = starts[i]
            if ns > cur + EPS:
                total += min(ns, end) - cur
            cur = max(cur, min(ends[i], end))
            i += 1
        return total

    def busy_time(self, start: Time, end: Time) -> Time:
        if end <= start + EPS:
            return 0.0
        return (end - start) - self.idle_time(start, end)

    def scratch_arrays(self) -> Tuple[List[Time], List[Time]]:
        """Mutable (starts, ends) copies for what-if probing.

        Feasibility tests probe and tentatively insert on these plain float
        lists (:mod:`repro.sched.soa`) instead of copying the whole
        timeline; ``Reservation`` objects are built only for accepted
        placements.
        """
        return (list(self._starts), list(self._ends))

    def signature(self) -> Tuple[Tuple[Time, ...], Tuple[Time, ...]]:
        """Hashable (starts, ends) snapshot — the admission-cache state digest.

        Two timelines with equal signatures admit exactly the same windows:
        feasibility probing reads nothing but these two arrays.
        """
        return (tuple(self._starts), tuple(self._ends))

    def tail_signature(
        self, cutoff: Time
    ) -> Tuple[Tuple[Time, ...], Tuple[Time, ...]]:
        """Signature of the intervals still visible past ``cutoff``.

        An interval with ``end <= cutoff + EPS`` cannot influence any
        probe whose release is at or after ``cutoff`` (the predecessor
        check ignores it, and probing only moves forward), so two
        timelines with equal *tail* signatures answer all such probes
        identically — whatever already-finished history they carry.
        """
        k = bisect_right(self._ends, cutoff + EPS)
        return (tuple(self._starts[k:]), tuple(self._ends[k:]))

    def tail_len(self, cutoff: Time) -> int:
        """Number of intervals still visible past ``cutoff``."""
        return len(self._ends) - bisect_right(self._ends, cutoff + EPS)

    def at(self, time: Time) -> Optional[Reservation]:
        """The reservation covering ``time``, if any."""
        i = bisect_right(self._starts, time + EPS)
        if i > 0 and self._items[i - 1].end > time + EPS:
            return self._items[i - 1]
        return None

    def next_start_after(self, time: Time) -> Optional[Time]:
        """Start of the first reservation beginning after ``time``."""
        i = bisect_right(self._starts, time + EPS)
        return self._items[i].start if i < len(self._items) else None

    # -- mutation ------------------------------------------------------------

    def reserve(self, res: Reservation) -> None:
        """Insert ``res``; raises :class:`SchedulingError` on overlap.

        One bisect serves both the overlap check and the insertion point:
        when the window is free there is no existing start inside
        ``(start, start+EPS]`` (it would overlap), so the EPS-shifted
        index equals the exact one.
        """
        start = res.start
        end = res.end
        if end <= start + EPS:
            raise SchedulingError(f"empty window [{start}, {end})")
        starts = self._starts
        ends = self._ends
        i = bisect_right(starts, start + EPS)
        if (i > 0 and ends[i - 1] > start + EPS) or (
            i < len(starts) and starts[i] < end - EPS
        ):
            clash = self.at(start) or self.at(end - 2 * EPS)
            raise SchedulingError(
                f"reservation {res.job}/{res.task!r} [{start}, {end}) "
                f"overlaps {clash.job}/{clash.task!r} [{clash.start}, {clash.end})"
                if clash
                else f"reservation [{start}, {end}) overlaps existing work"
            )
        starts.insert(i, start)
        ends.insert(i, end)
        self._items.insert(i, res)

    def remove_exact(self, res: Reservation) -> None:
        """Remove exactly ``res`` (identity); raises if it is not present.

        Rollback primitive for atomic batch commits: starts are unique
        (intervals are non-overlapping with positive length), so the
        bisect lands on the only possible slot.
        """
        i = bisect_left(self._starts, res.start)
        if i < len(self._items) and self._items[i] is res:
            del self._items[i]
            del self._starts[i]
            del self._ends[i]
            return
        raise SchedulingError(
            f"reservation {res.job}/{res.task!r} [{res.start}, {res.end}) not present"
        )

    def release_key(self, job: JobId, task: Optional[TaskId] = None) -> int:
        """Remove reservations of ``job`` (optionally one task). Returns count."""
        removed = 0
        for i in range(len(self._items) - 1, -1, -1):
            r = self._items[i]
            if r.job == job and (task is None or r.task == task):
                del self._items[i]
                del self._starts[i]
                del self._ends[i]
                removed += 1
        return removed

    def prune_before(self, time: Time) -> int:
        """Drop reservations that end at or before ``time`` (history)."""
        i = 0
        while i < len(self._items) and self._items[i].end <= time + EPS:
            i += 1
        if i:
            del self._items[:i]
            del self._starts[:i]
            del self._ends[:i]
        return i

    def copy(self) -> "BusyTimeline":
        """Shallow copy (reservations are frozen, safe to share)."""
        other = BusyTimeline()
        other._starts = list(self._starts)
        other._ends = list(self._ends)
        other._items = list(self._items)
        return other

    # -- invariants ------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert sortedness and non-overlap (used by property tests)."""
        for i in range(1, len(self._items)):
            a, b = self._items[i - 1], self._items[i]
            if b.start < a.end - EPS:
                raise SchedulingError(
                    f"overlap: [{a.start},{a.end}) and [{b.start},{b.end})"
                )
            if self._starts[i] != b.start or self._starts[i - 1] != a.start:
                raise SchedulingError("start index out of sync")
            if self._ends[i] != b.end or self._ends[i - 1] != a.end:
                raise SchedulingError("end index out of sync")
