"""Local scheduling substrate.

Every site owns a *scheduling plan* — the set of tasks it has already
guaranteed, laid out on its (single) compute processor as non-overlapping
reservations. The paper's protocol needs four operations on it:

1. the **local test** (§5): can a whole DAG be inserted "in-between tasks
   already accepted" before its deadline?
2. the **surplus** (§2): idle fraction of an observation window;
3. **validation** (§10): is a task set ``T_i`` with per-task release/deadline
   windows *locally satisfiable*?
4. **insertion** (§11): commit the reservations of an endorsed task set.

Modules:

* :mod:`repro.sched.intervals` — busy-interval timeline with earliest-fit
  queries (the core data structure, O(log n) lookup + O(n) insert);
* :mod:`repro.sched.plan` — the plan object (timeline + job bookkeeping +
  surplus);
* :mod:`repro.sched.feasibility` — non-preemptive insertion-based tests;
* :mod:`repro.sched.preemptive` — preemptive-EDF variant (paper §13);
* :mod:`repro.sched.matching` — maximum bipartite matching (Hopcroft–Karp)
  for the validation "coupling";
* :mod:`repro.sched.executor` — the compute processor: runs reservations,
  tracks readiness (code + predecessor results), records lateness.
"""

from repro.sched.intervals import BusyTimeline, Reservation
from repro.sched.plan import SchedulingPlan
from repro.sched.feasibility import (
    WindowTask,
    try_schedule_dag_locally,
    try_schedule_window_tasks,
)
from repro.sched.preemptive import preemptive_chunks, preemptive_satisfiable
from repro.sched.matching import hopcroft_karp, maximum_matching_bruteforce

__all__ = [
    "BusyTimeline",
    "Reservation",
    "SchedulingPlan",
    "WindowTask",
    "try_schedule_dag_locally",
    "try_schedule_window_tasks",
    "preemptive_chunks",
    "preemptive_satisfiable",
    "hopcroft_karp",
    "maximum_matching_bruteforce",
]
