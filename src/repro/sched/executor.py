"""The compute processor: executes committed reservations.

The paper separates each site's *management* processor (protocol) from its
*compute* processor (task execution). This module is the compute processor:
an event-driven executor that follows the site's scheduling plan.

Execution model
---------------
* A task owns one or more reservation *chunks* (one in the non-preemptive
  scheduler; several when the §13 preemptive scheduler split it across idle
  windows). Chunks of one task execute in start order; the task completes
  at the end of its last chunk.
* Chunks are preferred in slot (start-time) order. A chunk may begin only
  when (a) the processor is free, (b) its slot start has been reached, and
  (c) — for the task's *first* chunk — the task's *gate* is open: every
  prerequisite token has been delivered.
* Tokens model data availability: ``("done", job, task)`` for completion of
  a local predecessor and ``("result", job, task)`` for the arrival of a
  remote predecessor's result message. The protocol layer registers gates at
  commit time and delivers result tokens on message arrival.
* If the slot-order head is not ready, the executor is **work-conserving**:
  it runs the earliest *ready* chunk whose slot start has passed instead of
  idling. Combined with jobs being mutually independent DAGs this rules out
  cross-site execution deadlocks.
* A chunk runs non-preemptively for exactly its reserved duration. Actual
  start/end are recorded next to the reserved ones; ``lateness > 0`` means
  the ACS-diameter over-estimate was too optimistic for this instance — the
  effective-guarantee-ratio metric (E1) is built from these records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import SchedulingError
from repro.sched.intervals import Reservation
from repro.sched.plan import SchedulingPlan
from repro.simnet.engine import Simulator
from repro.types import EPS, JobId, TaskId, Time

Key = Tuple[JobId, TaskId]
Token = Tuple[str, JobId, TaskId]
CompletionCallback = Callable[[JobId, TaskId, Time], None]


@dataclass
class ExecutionRecord:
    """Reserved vs actual execution of one task (possibly chunked)."""

    chunks: List[Reservation]
    #: (actual_start, actual_end) per executed chunk, in execution order
    actual: List[Tuple[Time, Time]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.chunks:
            raise SchedulingError("execution record needs at least one chunk")
        self.chunks = sorted(self.chunks, key=lambda r: r.start)

    @property
    def done(self) -> bool:
        return len(self.actual) == len(self.chunks)

    @property
    def started(self) -> bool:
        return bool(self.actual)

    @property
    def next_chunk(self) -> Reservation:
        return self.chunks[len(self.actual)]

    @property
    def actual_start(self) -> Optional[Time]:
        return self.actual[0][0] if self.actual else None

    @property
    def actual_end(self) -> Optional[Time]:
        if not self.done:
            return None
        return self.actual[-1][1]

    @property
    def reservation(self) -> Reservation:
        """The first (for single-chunk tasks: the only) reservation."""
        return self.chunks[0]

    @property
    def lateness(self) -> Time:
        """actual end - reserved end of the final chunk (positive = slipped)."""
        if not self.done:
            raise SchedulingError("task not finished yet")
        return self.actual[-1][1] - self.chunks[-1].end


class PlanExecutor:
    """Executes one site's plan on the simulator.

    Parameters
    ----------
    sim:
        The event loop.
    plan:
        The site's plan; the executor learns about newly committed
        reservations via :meth:`notify_committed`.
    """

    def __init__(self, sim: Simulator, plan: SchedulingPlan) -> None:
        self.sim = sim
        self.plan = plan
        self.on_complete: List[CompletionCallback] = []
        self._records: Dict[Key, ExecutionRecord] = {}
        #: the not-yet-done subset of ``_records`` — the only records the
        #: wake-up scan looks at, so a long run's pile of finished records
        #: costs nothing per wake
        self._unfinished: Dict[Key, ExecutionRecord] = {}
        #: key -> cached ``repr(key)`` sort tiebreak (stable per record)
        self._tiebreak: Dict[Key, str] = {}
        #: key -> outstanding prerequisite tokens (first chunk only)
        self._gates: Dict[Key, Set[Token]] = {}
        #: token -> keys whose gate still awaits it (reverse index so
        #: delivery doesn't scan every gate on the site)
        self._token_waiters: Dict[Token, Set[Key]] = {}
        #: tokens delivered before their gate was registered
        self._early_tokens: Set[Token] = set()
        self._running: Optional[Key] = None
        self._timer_version = 0

    # -- commit-time API (called by protocol layers) -------------------------

    def notify_committed(
        self,
        reservations: List[Reservation],
        gates: Optional[Dict[Key, Set[Token]]] = None,
    ) -> None:
        """Register freshly committed reservations and their gates.

        Reservations sharing a (job, task) key are the chunks of one
        preemptively-split task. ``gates[key]`` is the token set that must
        arrive before the task may start; missing keys mean "no
        prerequisites". Tokens that already arrived (early results) are
        discounted immediately.
        """
        by_key: Dict[Key, List[Reservation]] = {}
        for r in reservations:
            by_key.setdefault(r.key(), []).append(r)
        for key, chunks in by_key.items():
            if key in self._records:
                raise SchedulingError(
                    f"site {self.plan.site}: duplicate execution record {key}"
                )
            rec = ExecutionRecord(chunks)
            self._records[key] = rec
            self._unfinished[key] = rec
            self._tiebreak[key] = repr(key)
            pending = set(gates.get(key, ())) if gates else set()
            pending -= self._early_tokens
            self._gates[key] = pending
            for token in pending:
                self._token_waiters.setdefault(token, set()).add(key)
        self._wake()

    def deliver_token(self, token: Token) -> None:
        """Deliver a prerequisite token (e.g. a remote result arrived)."""
        hit = False
        waiters = self._token_waiters.pop(token, None)
        if waiters:
            for key in waiters:
                pending = self._gates.get(key)
                if pending is not None and token in pending:
                    pending.discard(token)
                    hit = True
        if not hit:
            # Remember for gates registered later (message raced the commit).
            self._early_tokens.add(token)
        self._wake()

    # -- queries ---------------------------------------------------------------

    def record(self, job: JobId, task: TaskId) -> ExecutionRecord:
        try:
            return self._records[(job, task)]
        except KeyError:
            raise SchedulingError(
                f"site {self.plan.site}: no execution record for job {job} task {task!r}"
            ) from None

    def records(self) -> Dict[Key, ExecutionRecord]:
        return dict(self._records)

    def busy(self) -> bool:
        return self._running is not None

    def n_unfinished(self) -> int:
        """Committed-but-unfinished records — the soak leak audit's probe.

        After a full drain (every accepted job past its deadline plus
        margin) this must read 0 on every site; a nonzero value means a
        committed reservation never executed, i.e. leaked plan state.
        """
        return len(self._unfinished)

    # -- engine ------------------------------------------------------------------

    def _candidates(self) -> List[Tuple[Time, str, Key]]:
        """(next chunk start, tiebreak, key) of unfinished tasks, slot order."""
        tiebreak = self._tiebreak
        out = [
            (rec.chunks[len(rec.actual)].start, tiebreak[k], k)
            for k, rec in self._unfinished.items()
        ]
        out.sort()
        return out

    def _gate_open(self, key: Key) -> bool:
        # Gates guard only the first chunk: once a task started, its inputs
        # were available.
        if self._records[key].started:
            return True
        return not self._gates.get(key)

    def _wake(self) -> None:
        if self._running is not None:
            return
        if not self._unfinished:
            return
        now = self.sim.now
        if len(self._unfinished) == 1:
            # Single-task fast path (the common state on lightly loaded
            # sites): no candidate list, no tiebreak lookups, no sort.
            # Identical decisions — with one candidate, slot order and
            # "earliest ready fallback" collapse to the same check.
            (k, rec), = self._unfinished.items()
            start = rec.chunks[len(rec.actual)].start
            if start <= now + EPS:
                if self._gate_open(k):
                    self._start(k)
                return
            self._timer_version += 1
            self.sim.schedule_call_at(start, self._on_timer, self._timer_version)
            return
        cands = self._candidates()
        # Prefer slot order; fall back to earliest ready whose start passed.
        runnable: Optional[Key] = None
        head_start, _, head = cands[0]
        if head_start <= now + EPS and self._gate_open(head):
            runnable = head
        else:
            for start, _, k in cands[1:]:
                if start <= now + EPS and self._gate_open(k):
                    runnable = k
                    break
        if runnable is not None:
            self._start(runnable)
            return
        # Nothing ready now: arm a timer for the next slot start in the
        # future (gate deliveries re-wake us independently).
        future_starts = [start for start, _, _ in cands if start > now + EPS]
        if future_starts:
            self._timer_version += 1
            self.sim.schedule_call_at(min(future_starts), self._on_timer, self._timer_version)

    def _on_timer(self, version: int) -> None:
        if version == self._timer_version and self._running is None:
            self._wake()

    def _start(self, key: Key) -> None:
        rec = self._records[key]
        chunk = rec.next_chunk
        start = self.sim.now
        self._running = key
        # closure-free: the (key, started_at) pair rides as the callback arg
        self.sim.schedule_call(chunk.duration, self._finish_call, (key, start))

    def _finish_call(self, key_start: Tuple[Key, Time]) -> None:
        self._finish(key_start[0], key_start[1])

    def _finish(self, key: Key, started_at: Time) -> None:
        rec = self._records[key]
        rec.actual.append((started_at, self.sim.now))
        self._running = None
        if rec.done:
            del self._unfinished[key]
            job, task = key
            # Completion of a local task satisfies local "done" gates.
            self.deliver_token(("done", job, task))
            for cb in self.on_complete:
                cb(job, task, self.sim.now)
        self._wake()

    # -- maintenance ----------------------------------------------------------

    def reap_abandoned(self, before: Time) -> int:
        """Drop never-started records whose gate still blocks although
        their last reserved slot ended at or before ``before``.

        Under fault plans a prerequisite's result message can be lost for
        good (retries exhausted, site down past the retry budget); the
        gated record then never opens and would otherwise sit in
        ``_unfinished`` for the lifetime of the service — leaked plan
        state and leaked memory. Only gate-*blocked*, never-started
        records qualify: an open-gated record whose slot passed is merely
        queued behind the work-conserving processor and will still run.
        """
        dead = [
            k
            for k, rec in self._unfinished.items()
            if not rec.started
            and self._gates.get(k)
            and rec.chunks[-1].end <= before
            and k != self._running
        ]
        dead_jobs = {k[0] for k in dead}
        dead_set = set(dead)
        for k in dead:
            del self._unfinished[k]
            del self._records[k]
            self._gates.pop(k, None)
            self._tiebreak.pop(k, None)
        self._early_tokens = {
            t for t in self._early_tokens if t[1] not in dead_jobs
        }
        for token in list(self._token_waiters):
            keys = self._token_waiters[token]
            keys -= dead_set
            if not keys:
                del self._token_waiters[token]
        return len(dead)

    def prune_done_before(self, time: Time) -> int:
        """Forget finished records (and their tokens) older than ``time``."""
        old = [
            k
            for k, rec in self._records.items()
            if rec.done and rec.actual_end is not None and rec.actual_end <= time
        ]
        pruned_jobs = {k[0] for k in old}
        old_set = set(old)
        for k in old:
            del self._records[k]
            self._gates.pop(k, None)
            self._tiebreak.pop(k, None)
        # Tokens belonging to pruned jobs can no longer gate anything:
        # all of a job's gates are registered atomically at commit time.
        self._early_tokens = {
            t for t in self._early_tokens if t[1] not in pruned_jobs
        }
        for token in list(self._token_waiters):
            keys = self._token_waiters[token]
            keys -= old_set
            if not keys:
                del self._token_waiters[token]
        return len(old)
