"""Preemptive-EDF variant of the local scheduler (paper §13, first bullet).

"This algorithm may provide better results in the preemptive case": when a
site may split a task across several idle windows, more task sets become
locally satisfiable. On one processor, preemptive EDF is *optimal* for
independent tasks with release times and deadlines, so simulating EDF over
the plan's idle windows is an exact feasibility test — anything EDF misses
is genuinely infeasible.

:func:`preemptive_chunks` additionally returns the concrete execution
chunks (as ordinary :class:`Reservation` slices) so the plan can commit a
preemptive admission with the same machinery as the non-preemptive path.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

from repro.sched.intervals import BusyTimeline, Reservation
from repro.sched.feasibility import WindowTask
from repro.types import EPS, Time


def _edf_simulation(
    timeline: BusyTimeline,
    tasks: Sequence[WindowTask],
    not_before: Time,
    collect: bool,
) -> Optional[List[Reservation]]:
    """Simulate preemptive EDF inside the timeline's idle windows.

    Returns the chunk list (or ``[]`` when ``collect`` is False) on success,
    ``None`` on a deadline miss.
    """
    if not tasks:
        return []
    releases = sorted(
        ((max(t.release, not_before), i) for i, t in enumerate(tasks)),
        key=lambda x: (x[0], x[1]),
    )
    horizon = max(t.deadline for t in tasks)
    windows = timeline.idle_windows(
        min(r for r, _ in releases), horizon
    )
    remaining = [t.duration for t in tasks]
    chunks: List[Reservation] = []
    ready: List[Tuple[Time, int]] = []  # (deadline, index) heap
    next_rel = 0
    n_done = 0

    for w_start, w_end in windows:
        now = w_start
        while now < w_end - EPS:
            # admit released tasks
            while next_rel < len(releases) and releases[next_rel][0] <= now + EPS:
                _, i = releases[next_rel]
                heapq.heappush(ready, (tasks[i].deadline, i))
                next_rel += 1
            if not ready:
                if next_rel >= len(releases):
                    now = w_end
                    break
                now = min(w_end, releases[next_rel][0])
                continue
            ddl, i = ready[0]
            if ddl < now + remaining[i] - EPS and ddl < now - EPS:
                # current earliest deadline already passed
                return None
            # run task i until: window end, next release, or completion
            until = w_end
            if next_rel < len(releases):
                until = min(until, releases[next_rel][0])
            run = min(remaining[i], until - now)
            if run > EPS:
                if collect:
                    t = tasks[i]
                    chunks.append(
                        Reservation(
                            now,
                            now + run,
                            t.job,
                            t.task,
                            release=t.release,
                            deadline=t.deadline,
                        )
                    )
                remaining[i] -= run
                now += run
            if remaining[i] <= EPS:
                heapq.heappop(ready)
                if now > tasks[i].deadline + EPS:
                    return None
                n_done += 1
            elif now >= until - EPS and until < w_end - EPS:
                # a release interrupted us; loop to re-evaluate EDF order
                continue
            elif now >= w_end - EPS:
                break
        # window exhausted; check no ready task is already doomed
        for ddl, i in ready:
            if ddl < now - EPS:
                return None

    if n_done < len(tasks):
        return None
    # merge adjacent chunks of the same task for tidier plans
    if collect and chunks:
        merged: List[Reservation] = [chunks[0]]
        for ch in chunks[1:]:
            last = merged[-1]
            if (
                ch.job == last.job
                and ch.task == last.task
                and abs(ch.start - last.end) <= EPS
            ):
                merged[-1] = Reservation(
                    last.start, ch.end, last.job, last.task, last.release, last.deadline
                )
            else:
                merged.append(ch)
        return merged
    return chunks


def preemptive_satisfiable(
    timeline: BusyTimeline, tasks: Sequence[WindowTask], not_before: Time
) -> bool:
    """Exact preemptive feasibility of ``tasks`` in the timeline's gaps."""
    return _edf_simulation(timeline, tasks, not_before, collect=False) is not None


def preemptive_chunks(
    timeline: BusyTimeline, tasks: Sequence[WindowTask], not_before: Time
) -> Optional[List[Reservation]]:
    """Concrete EDF execution chunks, or ``None`` if infeasible."""
    return _edf_simulation(timeline, tasks, not_before, collect=True)
