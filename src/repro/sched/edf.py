"""EDF analysis utilities (demand-bound reasoning).

These are *analysis* helpers, not used on the protocol hot path: the
processor-demand criterion gives a necessary condition for feasibility of
window tasks on a timeline, which the property tests use to cross-check the
constructive tests in :mod:`repro.sched.feasibility` and
:mod:`repro.sched.preemptive` (a constructive "yes" must satisfy the bound;
a bound violation must make both tests say "no").
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.sched.feasibility import WindowTask
from repro.sched.intervals import BusyTimeline
from repro.types import EPS, Time


def demand(tasks: Sequence[WindowTask], t1: Time, t2: Time) -> Time:
    """Processor demand of ``tasks`` in ``[t1, t2]``: total work of tasks
    whose window lies entirely inside the interval."""
    return sum(
        t.duration for t in tasks if t.release >= t1 - EPS and t.deadline <= t2 + EPS
    )


def demand_points(tasks: Sequence[WindowTask]) -> Tuple[List[Time], List[Time]]:
    """Candidate interval endpoints (releases, deadlines) for the criterion."""
    rel = sorted({t.release for t in tasks})
    ddl = sorted({t.deadline for t in tasks})
    return rel, ddl


def demand_bound_satisfied(
    timeline: BusyTimeline, tasks: Sequence[WindowTask], not_before: Time
) -> bool:
    """Necessary feasibility condition (even preemptively).

    For every release/deadline pair ``(t1, t2)``, the demand inside
    ``[max(t1, not_before), t2]`` must not exceed the timeline's idle
    capacity there. O(n² · timeline) — test-oracle usage only.
    """
    rel, ddl = demand_points(tasks)
    for t1 in rel:
        lo = max(t1, not_before)
        for t2 in ddl:
            if t2 <= lo + EPS:
                continue
            need = demand(tasks, t1, t2)
            if need <= EPS:
                continue
            have = timeline.idle_time(lo, t2)
            if need > have + EPS:
                return False
    return True


def utilization(tasks: Sequence[WindowTask]) -> float:
    """Total work divided by the span of the task windows (diagnostics)."""
    if not tasks:
        return 0.0
    span = max(t.deadline for t in tasks) - min(t.release for t in tasks)
    if span <= EPS:
        return float("inf")
    return sum(t.duration for t in tasks) / span
