"""Distributed shortest-path substrate (paper §7).

The PCS is built by an *interrupted* distributed all-pairs shortest-path
algorithm: the asynchronous Bellman–Ford of Bertsekas & Gallager, organised
into logical phases and stopped after ``2h`` phases so flooding never leaves
the neighbourhood.

* :mod:`repro.routing.table` — routing tables with ``<destination,
  distance, next hop>`` lines plus hop/discovery-phase metadata.
* :mod:`repro.routing.bellman_ford` — the phased protocol run over the
  simulator by every site simultaneously (delta updates, per-phase
  synchronisation with buffering of early neighbours).
* :mod:`repro.routing.reference` — centralized hop-bounded Bellman–Ford and
  Dijkstra oracles used by tests and metrics (never by protocol code).
"""

from repro.routing.table import RouteEntry, RoutingTable
from repro.routing.bellman_ford import PhasedBellmanFord, run_pcs_phase_protocol
from repro.routing.reference import dijkstra, hop_bounded_distances

__all__ = [
    "RouteEntry",
    "RoutingTable",
    "PhasedBellmanFord",
    "run_pcs_phase_protocol",
    "dijkstra",
    "hop_bounded_distances",
]
