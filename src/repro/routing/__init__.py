"""Distributed shortest-path substrate (paper §7).

The PCS is built by an *interrupted* distributed all-pairs shortest-path
algorithm: the asynchronous Bellman–Ford of Bertsekas & Gallager, organised
into logical phases and stopped after ``2h`` phases so flooding never leaves
the neighbourhood.

* :mod:`repro.routing.table` — routing tables with ``<destination,
  distance, next hop>`` lines plus hop/discovery-phase metadata.
* :mod:`repro.routing.bellman_ford` — the phased protocol run over the
  simulator by every site simultaneously (delta updates, per-phase
  synchronisation with buffering of early neighbours).
* :mod:`repro.routing.reference` — centralized hop-bounded Bellman–Ford and
  Dijkstra oracles used by tests and metrics (never by protocol code).
* :mod:`repro.routing.vectorized` — the same phased computation as batched
  numpy min-plus sweeps over the link-weight matrix (semantics-exact,
  cross-checked against both the oracle and the simulated protocol).
* :mod:`repro.routing.oracle` — lazy array-backed routing tables and the
  :class:`OracleRouting` drop-in that installs the vectorized results into
  sites without simulating a single message (the wide-network setup path).
"""

from repro.routing.table import RouteEntry, RoutingTable
from repro.routing.bellman_ford import PhasedBellmanFord, run_pcs_phase_protocol
from repro.routing.oracle import LazyRoutingTable, OracleRouting, oracle_routing_factory
from repro.routing.reference import dijkstra, hop_bounded_distances
from repro.routing.vectorized import (
    SharedTables,
    bfs_hops_matrix,
    hop_diameter_fast,
    phased_tables,
    true_distance_matrix,
    weight_matrix,
)

__all__ = [
    "RouteEntry",
    "RoutingTable",
    "PhasedBellmanFord",
    "run_pcs_phase_protocol",
    "dijkstra",
    "hop_bounded_distances",
    "SharedTables",
    "bfs_hops_matrix",
    "hop_diameter_fast",
    "phased_tables",
    "true_distance_matrix",
    "weight_matrix",
    "LazyRoutingTable",
    "OracleRouting",
    "oracle_routing_factory",
]
