"""Vectorized routing-table construction (the wide-network setup kernel).

The distributed phased Bellman–Ford (:mod:`repro.routing.bellman_ford`)
is the *protocol*; this module is the same computation done centrally as
batched numpy min-plus sweeps over the link-weight matrix, so a 1000-site
network's routing tables materialize in milliseconds instead of simulating
hundreds of thousands of update messages.

The kernel is **semantics-exact**, not merely value-approximate: each
phase offers candidate routes per next-hop id in ascending order and
applies the same replacement rule as :meth:`RoutingTable.consider`
(strictly shorter within :data:`~repro.types.EPS`, or equal-delay with a
lower next-hop id), and candidate delays are accumulated in the same
association order the protocol uses (``link delay + neighbour's
accumulated delay``). The resulting distance/next-hop/hops/discovery
matrices therefore match a simulated protocol run bit for bit — pinned by
``tests/routing/test_vectorized.py`` — which is what lets the oracle
routing mode (:mod:`repro.routing.oracle`) install them directly into
sites without changing any scheduling decision downstream.

Layout: one :class:`SharedTables` holds four ``n x n`` arrays shared by
*all* sites — row ``i`` is site ``i``'s table. Per-site state is a pair
of row views (O(1) per site); absent routes are ``inf`` delay /
``-1`` next hop / ``-1`` discovery phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

import numpy as np

from repro.errors import RoutingError
from repro.types import EPS

#: sentinel for "no route" in the integer matrices
NO_ROUTE = -1


@dataclass(frozen=True)
class SharedTables:
    """All-site routing tables as shared immutable arrays.

    ``dist[i, j]`` is site ``i``'s known minimum delay to ``j`` (``inf``
    when ``j`` is undiscovered), ``next_hop[i, j]`` the adjacent site the
    route leaves through (``-1`` when absent, ``i`` on the diagonal),
    ``hops[i, j]`` the edge count of the path realising ``dist`` and
    ``disc[i, j]`` the phase at which ``j`` entered ``i``'s table (the
    BFS hop distance; ``0`` on the diagonal). ``phases`` is the phase
    budget the tables were interrupted at.
    """

    n: int
    phases: int
    dist: np.ndarray
    next_hop: np.ndarray
    hops: np.ndarray
    disc: np.ndarray

    def known_count(self, sid: int) -> int:
        """Number of table entries of site ``sid`` (self included)."""
        return int(np.count_nonzero(self.disc[sid] >= 0))


def weight_matrix(topo) -> np.ndarray:
    """The symmetric link-delay matrix of a topology.

    ``W[u, v]`` is the delay of link ``(u, v)`` and ``inf`` where no link
    exists (including the diagonal — self-delay never participates in the
    phased relaxation). Raises :class:`~repro.errors.RoutingError` on
    non-positive delays, mirroring the protocol's start-time guard.
    """
    n = topo.n
    W = np.full((n, n), np.inf, dtype=np.float64)
    for u, v, d in topo.edges:
        if d <= 0:
            raise RoutingError(
                f"link ({u},{v}) has non-positive delay {d}; "
                "hop-by-hop forwarding needs strictly positive delays"
            )
        W[u, v] = d
        W[v, u] = d
    return W


def _neighbor_lists(W: np.ndarray) -> List[np.ndarray]:
    """``lists[u]`` = row indices of the sites adjacent to ``u``."""
    finite = np.isfinite(W)
    return [np.flatnonzero(finite[:, u]) for u in range(W.shape[0])]


def _phase1_state(W: np.ndarray):
    """Phase-1 knowledge matrices: self plus adjacent links."""
    n = W.shape[0]
    ids = np.arange(n)
    finite = np.isfinite(W)
    dist = W.copy()
    np.fill_diagonal(dist, 0.0)
    next_hop = np.where(finite, ids[None, :], NO_ROUTE).astype(np.int64)
    np.fill_diagonal(next_hop, ids)
    hops = np.where(finite, 1, NO_ROUTE).astype(np.int64)
    np.fill_diagonal(hops, 0)
    disc = np.where(finite, 1, NO_ROUTE).astype(np.int64)
    np.fill_diagonal(disc, 0)
    return dist, next_hop, hops, disc


def phased_tables(W: np.ndarray, total_phases: int) -> SharedTables:
    """Run ``total_phases`` of the phased Bellman–Ford, batched.

    Phase counting follows the paper (and the protocol): the initial
    table — self plus adjacent links — is phase 1, so ``total_phases``
    phases mean ``total_phases - 1`` synchronous relaxation sweeps. Each
    sweep offers, for every ordered pair ``(i, j)`` and every neighbour
    ``u`` of ``i`` in ascending id order, the candidate route
    ``W[i, u] + dist_prev[u, j]`` and applies the
    :meth:`RoutingTable.consider` replacement rule.

    Each sweep loops over candidate next hops ``u`` in ascending id order
    (the protocol's neighbour processing order) and batches the update
    over all pairs ``(site adjacent to u, destination known to u)`` at
    once. Restricting the destination columns to ``u``'s *known* set —
    the hop-bounded neighbourhood, exactly the lines the protocol would
    put on the wire — keeps early sweeps tiny and bounds the element
    work by ``O(sum_u degree(u) * |knowledge_u|)`` per sweep. (Both a
    ``minimum.reduceat`` edge-list formulation and a degree-padded 3D
    formulation were measured 1.5-6x slower here: small per-site degrees
    make their per-segment/gather overheads dominate.) Cross-checked
    exactly against the simulated protocol and the pure-Python oracle by
    ``tests/routing/test_vectorized.py``.
    """
    if total_phases < 1:
        raise RoutingError(f"total_phases must be >= 1, got {total_phases}")
    n = W.shape[0]
    dist, next_hop, hops, disc = _phase1_state(W)
    neighbors_of = _neighbor_lists(W)
    link_col = [W[neighbors_of[u], u][:, None] for u in range(n)]
    for phase in range(2, total_phases + 1):
        dist_prev = dist.copy()
        hops_prev = hops.copy()
        changed = False
        for u in range(n):
            rows = neighbors_of[u]
            if rows.size == 0:
                continue
            # u's knowledge after the previous phase = the delta+history
            # the protocol has sent; only these columns can carry offers
            cols_u = np.flatnonzero(np.isfinite(dist_prev[u]))
            # candidate delay accumulates exactly like the protocol: my
            # link delay to u, plus u's previous-phase accumulated delay
            cand = link_col[u] + dist_prev[u, cols_u][None, :]
            ix = (rows[:, None], cols_u[None, :])
            cur = dist[ix]
            repl = (cand < cur - EPS) | ((np.abs(cand - cur) <= EPS) & (u < next_hop[ix]))
            # a site never replaces its own self-entry
            repl &= rows[:, None] != cols_u[None, :]
            if not repl.any():
                continue
            changed = True
            rr, cc = np.nonzero(repl)
            ri = rows[rr]
            cj = cols_u[cc]
            dist[ri, cj] = cand[rr, cc]
            next_hop[ri, cj] = u
            hops[ri, cj] = hops_prev[u, cj] + 1
            fresh = disc[ri, cj] < 0
            disc[ri[fresh], cj[fresh]] = phase
        if not changed:
            # Fixpoint: remaining phases are no-ops (the protocol would
            # keep exchanging empty deltas; the tables cannot change).
            break
    return SharedTables(
        n=n, phases=total_phases, dist=dist, next_hop=next_hop, hops=hops, disc=disc
    )


def bfs_hops_matrix(W: np.ndarray) -> np.ndarray:
    """All-pairs hop distances over the connectivity of ``W``.

    Pure breadth-first sweeps on boolean matrices: phase ``p`` marks every
    pair first connected by a ``p``-edge path. ``-1`` marks unreachable
    pairs. ``hops.max()`` is the hop diameter — what the experiment
    runner needs to size global routing for the baselines without the
    per-source pure-Python BFS of :func:`repro.routing.reference.hop_diameter`.
    """
    n = W.shape[0]
    finite = np.isfinite(W)
    hops = np.where(finite, 1, NO_ROUTE).astype(np.int64)
    np.fill_diagonal(hops, 0)
    reached = finite.copy()
    np.fill_diagonal(reached, True)
    neighbors_of = _neighbor_lists(W)
    phase = 1
    while True:
        grown = reached.copy()
        for u in range(n):
            rows = neighbors_of[u]
            if rows.size:
                grown[rows] |= reached[u][None, :]
        fresh = grown & ~reached
        if not fresh.any():
            return hops
        phase += 1
        hops[fresh] = phase
        reached = grown


def hop_diameter_fast(W: np.ndarray) -> int:
    """Max pairwise hop distance (vectorized :func:`~repro.routing.reference.hop_diameter`)."""
    return int(bfs_hops_matrix(W).max())


def true_distance_matrix(W: np.ndarray, max_sweeps: Union[int, None] = None) -> np.ndarray:
    """Exact all-pairs shortest delays by min-plus sweeps to fixpoint.

    Converged Bellman–Ford equals true shortest paths; convergence takes
    at most ``n - 1`` sweeps and in practice about the hop length of the
    longest minimum-delay path. Used by the oracle routing mode to feed
    the centralized baseline's coordinator at scales where per-source
    Dijkstra in Python dominates setup.
    """
    n = W.shape[0]
    dist = W.copy()
    np.fill_diagonal(dist, 0.0)
    neighbors_of = _neighbor_lists(W)
    sweeps = max_sweeps if max_sweeps is not None else max(1, n - 1)
    for _ in range(sweeps):
        prev = dist.copy()
        for u in range(n):
            rows = neighbors_of[u]
            if rows.size == 0:
                continue
            cand = W[rows, u][:, None] + prev[u][None, :]
            block = dist[rows]
            np.minimum(block, cand, out=block)
            dist[rows] = block
        if np.array_equal(dist, prev):
            break
    return dist
