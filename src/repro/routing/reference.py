"""Centralized shortest-path oracles.

Protocol code never imports this module; tests and metrics use it as ground
truth for the distributed computation:

* :func:`hop_bounded_distances` — min delay over paths of at most ``max_hops``
  edges (the exact semantics of the interrupted Bellman–Ford after
  ``max_hops`` phases);
* :func:`dijkstra` — unbounded shortest delay paths.

Implemented over plain adjacency dicts so they also work on
:class:`~repro.simnet.topology.Topology` objects without a live network.
"""

from __future__ import annotations

import heapq
from typing import Dict, Mapping, Tuple

from repro.types import SiteId, Time

Adjacency = Mapping[SiteId, Mapping[SiteId, Time]]


def dijkstra(adj: Adjacency, src: SiteId) -> Dict[SiteId, Time]:
    """Exact single-source shortest delay distances."""
    dist: Dict[SiteId, Time] = {src: 0.0}
    heap = [(0.0, src)]
    done = set()
    while heap:
        d, u = heapq.heappop(heap)
        if u in done:
            continue
        done.add(u)
        for v, w in adj[u].items():
            nd = d + w
            if v not in dist or nd < dist[v] - 1e-15:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def hop_bounded_distances(
    adj: Adjacency, src: SiteId, max_hops: int
) -> Dict[SiteId, Tuple[Time, int]]:
    """Min delay over paths with at most ``max_hops`` edges.

    Returns ``dest -> (distance, bfs_hops)`` where ``bfs_hops`` is the plain
    hop distance (the phase at which the distributed protocol discovers the
    destination). Destinations farther than ``max_hops`` hops are absent.

    Synchronous Bellman–Ford (Jacobi) iteration: ``dist_p[v] = min(dist_{p-1}[v],
    min_u dist_{p-1}[u] + w(u, v))`` — exactly what the phased protocol
    computes, so tests can require equality, not approximation.
    """
    dist: Dict[SiteId, Time] = {src: 0.0}
    bfs: Dict[SiteId, int] = {src: 0}
    prev = dict(dist)
    for phase in range(1, max_hops + 1):
        nxt: Dict[SiteId, Time] = dict(prev)
        for u, du in prev.items():
            for v, w in adj[u].items():
                nd = du + w
                if v not in nxt or nd < nxt[v] - 1e-15:
                    nxt[v] = nd
                if v not in bfs:
                    bfs[v] = phase
        prev = nxt
    return {d: (prev[d], bfs[d]) for d in prev}


def eccentricity(adj: Adjacency, src: SiteId) -> Time:
    """Max shortest-path delay from ``src`` to any reachable site."""
    return max(dijkstra(adj, src).values())


def delay_diameter(adj: Adjacency) -> Time:
    """Max pairwise shortest-path delay (oracle network diameter)."""
    return max(eccentricity(adj, s) for s in adj)


def route_stretch(
    adj: Adjacency, known: Mapping[SiteId, Mapping[SiteId, Time]]
) -> Dict[str, float]:
    """Quality of hop-bounded routing vs true shortest paths.

    ``known[s]`` is site s's distance map (e.g. ``site.known_distance``
    after the phased protocol). Returns mean/max *stretch* — the ratio of
    the hop-bounded distance to the Dijkstra distance — over all pairs the
    tables know. Stretch is always >= 1 and converges to 1 as the phase
    budget grows; E4 uses it to quantify what interruption costs.
    """
    stretches = []
    for src, dmap in known.items():
        truth = dijkstra(adj, src)
        for dst, d in dmap.items():
            if dst == src:
                continue
            t = truth[dst]
            if t > 0:
                stretches.append(d / t)
    if not stretches:
        return {"pairs": 0.0, "mean": float("nan"), "max": float("nan")}
    import numpy as np

    return {
        "pairs": float(len(stretches)),
        "mean": float(np.mean(stretches)),
        "max": float(np.max(stretches)),
    }


def hop_diameter(adj: Adjacency) -> int:
    """Max pairwise hop distance."""
    best = 0
    for s in adj:
        hops = {s: 0}
        frontier = [s]
        while frontier:
            nxt = []
            for u in frontier:
                for v in adj[u]:
                    if v not in hops:
                        hops[v] = hops[u] + 1
                        nxt.append(v)
            frontier = nxt
        best = max(best, max(hops.values()))
    return best
