"""Oracle routing: install vectorized tables without simulating the protocol.

The wide-network scale-out path (DESIGN.md "Wide-network scaling model").
Instead of simulating ``2h`` phases of routing-update messages per site —
the setup cost that dominated wall clock beyond ~100 sites —
:class:`OracleRouting` is a drop-in for
:class:`~repro.routing.bellman_ford.PhasedBellmanFord` that pulls its
rows from one :class:`~repro.routing.vectorized.SharedTables` computed
once per network. Because the vectorized kernel replicates the protocol's
replacement rule and float association exactly, every site ends up with
the *same* next-hop/distance/PCS state a simulated run would have built.

Per-site state is O(degree)-ish and lazy:

* :class:`LazyRoutingTable` — the :class:`~repro.routing.table.RoutingTable`
  API over row views of the shared arrays; :class:`RouteEntry` objects are
  materialized (and memoized) only for destinations actually touched;
* :class:`NextHopView` / :class:`DistanceView` — read-only mappings the
  site's ``next_hop`` / ``known_distance`` attributes are rebound to,
  replacing the per-site dict copies (the O(n) per site that made 1000+
  sites allocate hundreds of MB of duplicated routing state);
* the PCS is built sparsely from the row arrays
  (:meth:`LazyRoutingTable.pcs`), touching only sites inside the sphere
  radius.

Selected per experiment with ``ExperimentConfig.routing_mode="oracle"``;
the default ``"protocol"`` path is byte-for-byte untouched (the identity
goldens pin it).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import RoutingError
from repro.routing.table import RouteEntry
from repro.routing.vectorized import SharedTables
from repro.types import SiteId, Time


class _RowView:
    """Shared base of the read-only row mappings (one site's table row)."""

    __slots__ = ("_shared", "_owner")

    def __init__(self, shared: SharedTables, owner: SiteId) -> None:
        self._shared = shared
        self._owner = owner

    def _known(self) -> "list":
        """Destination ids present in this row (self included)."""
        return [int(d) for d in np.flatnonzero(self._shared.disc[self._owner] >= 0)]


class NextHopView(_RowView):
    """``dest -> adjacent next hop`` over the shared next-hop row.

    Mapping-compatible with the dict :class:`~repro.simnet.site.SiteBase`
    normally carries; the owner itself is absent (next hop to self is
    undefined), exactly like ``RoutingTable.as_next_hop_map``.
    """

    def get(self, dest: SiteId, default=None):
        """The adjacent hop towards ``dest``, or ``default`` if unrouted."""
        if dest == self._owner or not 0 <= dest < self._shared.n:
            return default
        hop = self._shared.next_hop[self._owner, dest]
        return int(hop) if hop >= 0 else default

    def __getitem__(self, dest: SiteId) -> SiteId:
        hop = self.get(dest)
        if hop is None:
            raise KeyError(dest)
        return hop

    def __contains__(self, dest: SiteId) -> bool:
        return self.get(dest) is not None

    def __iter__(self) -> Iterator[SiteId]:
        return (d for d in self._known() if d != self._owner)

    def __len__(self) -> int:
        return self._shared.known_count(self._owner) - 1

    def keys(self):
        """Routable destinations (owner excluded)."""
        return list(self)

    def items(self):
        """``(dest, next_hop)`` pairs, destination-ordered."""
        return [(d, self[d]) for d in self]


class DistanceView(_RowView):
    """``dest -> known minimum delay`` over the shared distance row.

    Includes the owner (distance 0), like ``RoutingTable.as_distance_map``.
    """

    def get(self, dest: SiteId, default=None):
        """Known delay to ``dest``, or ``default`` if undiscovered."""
        if not 0 <= dest < self._shared.n:
            return default
        if self._shared.disc[self._owner, dest] < 0:
            return default
        return float(self._shared.dist[self._owner, dest])

    def __getitem__(self, dest: SiteId) -> Time:
        d = self.get(dest)
        if d is None:
            raise KeyError(dest)
        return d

    def __contains__(self, dest: SiteId) -> bool:
        return self.get(dest) is not None

    def __iter__(self) -> Iterator[SiteId]:
        return iter(self._known())

    def __len__(self) -> int:
        return self._shared.known_count(self._owner)

    def keys(self):
        """Known destinations (owner included), ascending."""
        return self._known()

    def values(self):
        """Known delays, destination-ordered."""
        return [self[d] for d in self._known()]

    def items(self):
        """``(dest, delay)`` pairs, destination-ordered."""
        return [(d, self[d]) for d in self._known()]


class LazyRoutingTable:
    """The :class:`~repro.routing.table.RoutingTable` API over shared rows.

    Row data lives in the network-wide :class:`SharedTables`;
    :class:`RouteEntry` objects are built on first access per destination
    and memoized, so a site that only ever talks to its sphere
    materializes O(|PCS|) entries, not O(n).
    """

    __slots__ = ("owner", "_shared", "_entries")

    def __init__(self, shared: SharedTables, owner: SiteId) -> None:
        self.owner = owner
        self._shared = shared
        self._entries: Dict[SiteId, RouteEntry] = {}

    def invalidate(self) -> None:
        """Drop memoized entries after the shared arrays were repaired.

        The membership layer calls this for every affected row after an
        incremental join repair (:mod:`repro.membership.repair`): the row
        views read the shared arrays live, but materialized
        :class:`RouteEntry` objects would keep serving pre-join routes.
        """
        self._entries.clear()

    # -- queries (RoutingTable parity) --------------------------------------

    def __contains__(self, dest: SiteId) -> bool:
        return 0 <= dest < self._shared.n and self._shared.disc[self.owner, dest] >= 0

    def __len__(self) -> int:
        return self._shared.known_count(self.owner)

    def __iter__(self) -> Iterator[RouteEntry]:
        return (self.entry(d) for d in self.destinations())

    def entry(self, dest: SiteId) -> RouteEntry:
        """The (memoized) route line for ``dest``."""
        e = self._entries.get(dest)
        if e is not None:
            return e
        if dest not in self:
            raise RoutingError(f"site {self.owner}: no route to {dest}")
        s = self._shared
        e = RouteEntry(
            int(dest),
            float(s.dist[self.owner, dest]),
            int(s.next_hop[self.owner, dest]),
            int(s.hops[self.owner, dest]),
            int(s.disc[self.owner, dest]),
        )
        self._entries[dest] = e
        return e

    def get(self, dest: SiteId) -> Optional[RouteEntry]:
        """``entry(dest)`` or ``None`` when unrouted."""
        return self.entry(dest) if dest in self else None

    def distance(self, dest: SiteId) -> Time:
        """Known delay to ``dest`` (raises when unrouted)."""
        return self.entry(dest).distance

    def next_hop(self, dest: SiteId) -> SiteId:
        """Adjacent hop towards ``dest`` (undefined for the owner)."""
        e = self.entry(dest)
        if e.dest == self.owner:
            raise RoutingError(f"site {self.owner}: next hop to self is undefined")
        return e.next_hop

    def destinations(self) -> List[SiteId]:
        """Known destination ids, ascending (owner included)."""
        return [int(d) for d in np.flatnonzero(self._shared.disc[self.owner] >= 0)]

    def within_phase(self, max_phase: int) -> List[SiteId]:
        """Destinations first discovered at or before ``max_phase``."""
        disc = self._shared.disc[self.owner]
        return [int(d) for d in np.flatnonzero((disc >= 0) & (disc <= max_phase))]

    def as_next_hop_map(self) -> Dict[SiteId, SiteId]:
        """Materialized ``dest -> next hop`` dict (owner excluded)."""
        s = self._shared
        return {d: int(s.next_hop[self.owner, d]) for d in self.destinations() if d != self.owner}

    def as_distance_map(self) -> Dict[SiteId, Time]:
        """Materialized ``dest -> delay`` dict (owner included)."""
        s = self._shared
        return {d: float(s.dist[self.owner, d]) for d in self.destinations()}

    def distances_to(self, dests, exclude: Optional[SiteId] = None) -> Dict[SiteId, Time]:
        """Bulk known delays to ``dests`` (absent ones skipped)."""
        owner_row_disc = self._shared.disc[self.owner]
        owner_row_dist = self._shared.dist[self.owner]
        n = self._shared.n
        return {
            d: float(owner_row_dist[d])
            for d in dests
            if d != exclude and 0 <= d < n and owner_row_disc[d] >= 0
        }

    def lines(self) -> List[Tuple[SiteId, Time, int]]:
        """All route lines in wire format, deterministic order."""
        return [self.entry(d).as_line() for d in self.destinations()]

    # -- sphere construction ------------------------------------------------

    def pcs(self, h: int):
        """Sparse PCS build: touch only sites within hop radius ``h``.

        The vectorized counterpart of :func:`repro.spheres.pcs.build_pcs`:
        membership, delays and hop counts come straight from the shared
        row arrays, and only the member entries are ever materialized.
        Returns the identical :class:`~repro.spheres.pcs.PCS` a protocol
        table would produce.
        """
        from repro.spheres.pcs import PCS

        if h < 1:
            raise RoutingError(f"PCS radius h must be >= 1, got {h}")
        disc = self._shared.disc[self.owner]
        member_ids = np.flatnonzero((disc >= 1) & (disc <= h))
        dist_row = self._shared.dist[self.owner, member_ids]
        hops_row = disc[member_ids]
        distance = {int(d): float(x) for d, x in zip(member_ids, dist_row)}
        hops = {int(d): int(x) for d, x in zip(member_ids, hops_row)}
        order = np.lexsort((member_ids, dist_row))
        members = tuple(int(member_ids[k]) for k in order)
        return PCS(root=self.owner, h=h, members=members, distance=distance, hops=hops)


class OracleRouting:
    """Drop-in for :class:`~repro.routing.bellman_ford.PhasedBellmanFord`.

    Same constructor shape and post-``start()`` contract — ``done``,
    ``phase``, ``table``, the site's ``next_hop`` / ``known_distance``
    filled, the ``routing.done`` trace event, ``on_done`` fired — but
    ``start()`` completes synchronously at t=0 from the shared
    precomputed tables: no messages, no simulated phases.
    """

    def __init__(
        self,
        site,
        total_phases: int,
        shared: SharedTables,
        on_done: Optional[Callable[[], None]] = None,
    ) -> None:
        if total_phases < 1:
            raise RoutingError(f"total_phases must be >= 1, got {total_phases}")
        if shared.phases != total_phases:
            raise RoutingError(
                f"shared tables were built for {shared.phases} phases, "
                f"site {site.sid} wants {total_phases}"
            )
        if not 0 <= site.sid < shared.n:
            raise RoutingError(f"site {site.sid} outside shared tables (n={shared.n})")
        self.site = site
        self.total_phases = total_phases
        self.on_done = on_done
        self.shared = shared
        self.table = LazyRoutingTable(shared, site.sid)
        self.phase = 1
        self.done = False
        #: protocol-cost counters, zero by construction (nothing is sent)
        self.messages_sent = 0
        self.lines_sent = 0

    def start(self) -> None:
        """Install the precomputed row views and finish immediately."""
        # Rebind the per-site dicts to shared row views: O(1) per site
        # instead of an O(known destinations) dict copy per site.
        self.site.next_hop = NextHopView(self.shared, self.site.sid)
        self.site.known_distance = DistanceView(self.shared, self.site.sid)
        self.phase = self.total_phases
        self.done = True
        self.site.trace(
            "routing.done",
            phase=self.phase,
            routes=len(self.table),
            messages=self.messages_sent,
        )
        if self.on_done is not None:
            self.on_done()


def oracle_routing_factory(shared_by_phases: Dict[int, SharedTables]):
    """A site-level routing factory over per-phase-budget shared tables.

    ``shared_by_phases`` maps a phase budget to the
    :class:`SharedTables` built for it (RTDS sites ask for ``2h``,
    global-routing baselines for the hop diameter). The returned callable
    has the ``(site, total_phases, on_done=None)`` shape
    :class:`~repro.core.rtds.RTDSSite` and the baseline sites expect.
    """

    def factory(site, total_phases: int, on_done=None) -> OracleRouting:
        try:
            shared = shared_by_phases[total_phases]
        except KeyError:
            raise RoutingError(
                f"no shared tables prepared for phase budget {total_phases} "
                f"(have: {sorted(shared_by_phases)})"
            ) from None
        return OracleRouting(site, total_phases, shared, on_done)

    return factory
