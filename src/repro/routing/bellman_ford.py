"""Phased distributed Bellman–Ford (paper §7.1–7.2).

The Bertsekas–Gallager distributed asynchronous Bellman–Ford, adapted as the
paper prescribes:

* no periodic re-sends (topology is static and fault-free);
* organised into **logical phases**: in phase ``p`` every site sends the
  route lines that changed in phase ``p-1`` to all neighbours, then waits
  until it has received the phase-``p`` update of *every* neighbour before
  computing its next vector ("a phase is composed of send step and reception
  of all neighbor routing tables");
* **interrupted** after a configured number of phases, which bounds flooding
  to a neighbourhood: after ``P`` phases every site knows, for each
  destination within ``P`` hops, the minimum delay over paths of at most
  ``P`` edges.

Phase counting follows the paper: the *initial* table (self + adjacent
links) counts as phase 1 knowledge, so ``total_phases = 2h`` means ``2h - 1``
exchange rounds. Neighbours may run ahead by one phase (links have different
delays), so early updates are buffered per phase — a standard α-synchronizer.

Delta encoding: only changed lines travel (the paper's "updates are sent out
whenever destination vectors entries change"); a site whose vector did not
change still sends an empty update so neighbours can complete their phase.
Message size = number of lines + 1, feeding the E4 cost benchmark.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import RoutingError
from repro.routing.table import RoutingTable
from repro.simnet.message import Message
from repro.simnet.site import SiteBase
from repro.types import SiteId, Time

MSG_ROUTING_UPDATE = "ROUTING_UPDATE"


class PhasedBellmanFord:
    """The routing protocol instance attached to one site.

    Parameters
    ----------
    site:
        Owner; the instance registers the ``ROUTING_UPDATE`` handler on it.
    total_phases:
        Stop after this many logical phases (PCS uses ``2h``). Must be >= 1.
    on_done:
        Callback fired once, when the final phase completes on this site.
    """

    def __init__(
        self,
        site: SiteBase,
        total_phases: int,
        on_done: Optional[Callable[[], None]] = None,
    ) -> None:
        if total_phases < 1:
            raise RoutingError(f"total_phases must be >= 1, got {total_phases}")
        self.site = site
        self.total_phases = total_phases
        self.on_done = on_done
        self.table = RoutingTable(site.sid)
        self.phase = 1  # initial knowledge counts as phase 1 (paper counting)
        self.done = total_phases == 1
        #: lines changed during the previous phase, to be sent this phase
        self._pending_delta: List[Tuple[SiteId, Time, int]] = []
        #: phase -> {neighbor: lines} buffered updates (α-synchronizer)
        self._inbox: Dict[int, Dict[SiteId, List[Tuple[SiteId, Time, int]]]] = {}
        self.messages_sent = 0
        self.lines_sent = 0
        site.on(MSG_ROUTING_UPDATE, self._on_update)

    # -- protocol ------------------------------------------------------------

    def start(self) -> None:
        """Install adjacent-link knowledge and (if phases remain) kick off
        the first exchange round. Call on every site at t=0."""
        for nb in self.site.neighbors():
            d = self.site.network.link_delay(self.site.sid, nb)
            if d <= 0:
                raise RoutingError(
                    f"site {self.site.sid}: link to {nb} has non-positive delay {d}; "
                    "hop-by-hop forwarding needs strictly positive delays"
                )
            self.table.consider(nb, d, nb, hops=1, phase=1)
        self._pending_delta = self.table.lines()
        if self.done:
            self._finish()
        else:
            self._send_phase(2)

    def _send_phase(self, phase: int) -> None:
        """Send this site's delta for ``phase`` to every neighbour."""
        lines = self._pending_delta
        for nb in self.site.neighbors():
            self.site.send_neighbor(
                nb,
                MSG_ROUTING_UPDATE,
                payload={"phase": phase, "lines": lines},
                size=float(len(lines) + 1),
            )
            self.messages_sent += 1
            self.lines_sent += len(lines)
        self._pending_delta = []
        self._maybe_complete_phase(phase)

    def _on_update(self, msg: Message) -> None:
        phase = msg.payload["phase"]
        if phase <= self.phase:
            raise RoutingError(
                f"site {self.site.sid}: stale phase-{phase} update from {msg.src} "
                f"(already at phase {self.phase})"
            )
        self._inbox.setdefault(phase, {})[msg.src] = msg.payload["lines"]
        self._maybe_complete_phase(self.phase + 1)

    def _maybe_complete_phase(self, phase: int) -> None:
        """Finish ``phase`` once updates from all neighbours arrived."""
        if self.done or phase != self.phase + 1:
            return
        box = self._inbox.get(phase, {})
        neighbors = self.site.neighbors()
        if len(box) < len(neighbors):
            return
        # All neighbour updates for this phase are in: merge.
        changed: List[Tuple[SiteId, Time, int]] = []
        for nb in neighbors:
            d_nb = self.site.network.link_delay(self.site.sid, nb)
            for dest, dist, hops in box.pop(nb):
                if self.table.consider(dest, d_nb + dist, nb, hops + 1, phase):
                    e = self.table.entry(dest)
                    changed.append(e.as_line())
        # Deduplicate (a dest may improve via several neighbours).
        dedup = {line[0]: line for line in changed}
        # Re-read final entries (later neighbours may have improved them).
        self._pending_delta = [self.table.entry(d).as_line() for d in sorted(dedup)]
        del self._inbox[phase]
        self.phase = phase
        if self.phase >= self.total_phases:
            self.done = True
            self._finish()
        else:
            self._send_phase(self.phase + 1)

    def _finish(self) -> None:
        # Publish routes to the site so send_to()/forwarding work.
        self.site.next_hop.update(self.table.as_next_hop_map())
        self.site.known_distance.update(self.table.as_distance_map())
        self.site.trace(
            "routing.done",
            phase=self.phase,
            routes=len(self.table),
            messages=self.messages_sent,
        )
        if self.on_done is not None:
            self.on_done()


def run_pcs_phase_protocol(
    sites: List[SiteBase], total_phases: int
) -> Dict[SiteId, PhasedBellmanFord]:
    """Attach a :class:`PhasedBellmanFord` to every site and start them all.

    Returns the protocol instances keyed by site id. The caller runs the
    simulator; each instance's ``done`` flag (and the sites' ``next_hop``
    tables) are valid afterwards.
    """
    protos = {s.sid: PhasedBellmanFord(s, total_phases) for s in sites}
    for s in sites:
        protos[s.sid].start()
    return protos
