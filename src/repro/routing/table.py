"""Routing tables.

Each site maintains route lines ``<destination, distance, next hop>``
(paper §7.1) extended with two fields the sphere layer needs:

* ``hops`` — edge count of the path realising ``distance`` (so the PCS can
  check the paper's "diameter in terms of hops is bounded" property);
* ``discovered_phase`` — the logical phase at which the destination first
  entered the table. Because vectors propagate exactly one hop per phase
  regardless of delay values, this equals the BFS hop distance and is what
  defines PCS membership (``discovered_phase <= h``).

Tie-breaking: when two candidate routes have equal distance the lower
next-hop id wins, and an incumbent entry is only replaced by a strictly
shorter one. This makes the minimum-delay path to every destination
*unique and stable* across sites — the paper's "unique minimum
communication delay path" property — and keeps runs deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import RoutingError
from repro.types import DATACLASS_SLOTS, EPS, SiteId, Time


@dataclass(frozen=True, **DATACLASS_SLOTS)
class RouteEntry:
    """One routing-table line (slotted: tables hold one per destination)."""

    dest: SiteId
    distance: Time
    next_hop: SiteId
    hops: int
    discovered_phase: int

    def as_line(self) -> Tuple[SiteId, Time, int]:
        """The wire format of a route line: (destination, distance, hops).

        The next hop is *not* sent — a receiver computes its own (the
        sending neighbour itself), as in distance-vector routing.
        """
        return (self.dest, self.distance, self.hops)


class RoutingTable:
    """The routing table of one site."""

    def __init__(self, owner: SiteId) -> None:
        self.owner = owner
        self._entries: Dict[SiteId, RouteEntry] = {
            owner: RouteEntry(owner, 0.0, owner, 0, 0)
        }

    # -- queries -----------------------------------------------------------

    def __contains__(self, dest: SiteId) -> bool:
        return dest in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[RouteEntry]:
        return iter(self._entries.values())

    def entry(self, dest: SiteId) -> RouteEntry:
        try:
            return self._entries[dest]
        except KeyError:
            raise RoutingError(f"site {self.owner}: no route to {dest}") from None

    def get(self, dest: SiteId) -> Optional[RouteEntry]:
        return self._entries.get(dest)

    def distance(self, dest: SiteId) -> Time:
        return self.entry(dest).distance

    def next_hop(self, dest: SiteId) -> SiteId:
        e = self.entry(dest)
        if e.dest == self.owner:
            raise RoutingError(f"site {self.owner}: next hop to self is undefined")
        return e.next_hop

    def destinations(self) -> List[SiteId]:
        return sorted(self._entries)

    def within_phase(self, max_phase: int) -> List[SiteId]:
        """Destinations first discovered at or before ``max_phase``.

        With phase = BFS layer this is "all sites within ``max_phase`` hops"
        — the PCS membership rule.
        """
        return sorted(
            d for d, e in self._entries.items() if e.discovered_phase <= max_phase
        )

    def as_next_hop_map(self) -> Dict[SiteId, SiteId]:
        """dest -> adjacent next hop, for :attr:`SiteBase.next_hop`."""
        return {
            d: e.next_hop for d, e in self._entries.items() if d != self.owner
        }

    def as_distance_map(self) -> Dict[SiteId, Time]:
        return {d: e.distance for d, e in self._entries.items()}

    def distances_to(
        self, dests: Iterable[SiteId], exclude: Optional[SiteId] = None
    ) -> Dict[SiteId, Time]:
        """Known distances to the ``dests`` present in the table.

        Bulk form of ``entry(d).distance`` for the ENROLL_ACK hot path —
        one dict walk, no per-destination exception machinery. ``exclude``
        (typically the owner) is skipped.
        """
        entries = self._entries
        return {
            d: entries[d].distance
            for d in dests
            if d != exclude and d in entries
        }

    # -- updates -----------------------------------------------------------

    def consider(
        self,
        dest: SiteId,
        distance: Time,
        next_hop: SiteId,
        hops: int,
        phase: int,
    ) -> bool:
        """Offer a candidate route; keep it if strictly better.

        Returns True iff the table changed. "Better" is lexicographic
        (distance, next-hop id) with an EPS guard so float noise cannot flap
        routes; the discovery phase of a destination never changes once set.
        """
        if dest == self.owner:
            return False
        entries = self._entries
        cur = entries.get(dest)
        if cur is None:
            entries[dest] = RouteEntry(dest, distance, next_hop, hops, phase)
            return True
        cd = cur.distance
        if distance < cd - EPS or (abs(distance - cd) <= EPS and next_hop < cur.next_hop):
            entries[dest] = RouteEntry(
                dest, distance, next_hop, hops, cur.discovered_phase
            )
            return True
        return False

    def lines(self) -> List[Tuple[SiteId, Time, int]]:
        """All route lines in wire format, deterministic order."""
        return [self._entries[d].as_line() for d in sorted(self._entries)]
