#!/usr/bin/env python
"""The "arbitrary wide networks" claim, measured.

Grows the network from 12 to 96 sites (constant mean degree, constant
offered load) and tracks the per-job protocol cost of RTDS vs the
focused-addressing baseline whose periodic surplus *flooding* touches every
link. This is the experiment behind the paper's §3 remark: "our network may
be unbounded since we never broadcast over all the network".

Run:  python examples/wide_network_campaign.py           (~1 minute)
"""

from dataclasses import replace

from repro import ExperimentConfig, RTDSConfig, run_experiment
from repro.experiments.reporting import format_table

BASE = ExperimentConfig(
    rho=0.6,
    duration=200.0,
    laxity_factor=3.0,
    rtds=RTDSConfig(h=2),
    seed=5,
)

SIZES = (12, 24, 48, 96)


def main() -> None:
    rows = []
    for algo in ("rtds", "focused"):
        for n in SIZES:
            cfg = replace(
                BASE,
                algorithm=algo,
                topology="erdos_renyi",
                topology_kwargs={
                    "n": n,
                    "p": min(1.0, 4.0 / (n - 1)),
                    "delay_range": (0.2, 1.0),
                },
                label=f"{algo}-{n}",
            )
            res = run_experiment(cfg)
            s = res.summary
            rows.append(
                {
                    "algorithm": algo,
                    "sites": n,
                    "jobs": s.n_jobs,
                    "GR": round(s.guarantee_ratio, 3),
                    "msg/job": round(s.messages_per_job, 1),
                    "setup_msg": s.setup_messages,
                }
            )
    print(
        format_table(
            rows,
            title=(
                "Scaling the network at constant degree and load\n"
                "RTDS: sphere-bounded traffic.  focused: network-wide flooding."
            ),
        )
    )
    rtds = [r for r in rows if r["algorithm"] == "rtds"]
    focused = [r for r in rows if r["algorithm"] == "focused"]
    print()
    print(
        f"RTDS msg/job {rtds[0]['msg/job']} -> {rtds[-1]['msg/job']} "
        f"as N grows {SIZES[0]} -> {SIZES[-1]} (bounded by the sphere);"
    )
    print(
        f"focused msg/job {focused[0]['msg/job']} -> {focused[-1]['msg/job']} "
        "(grows with the network: unusable when the network is wide)."
    )


if __name__ == "__main__":
    main()
