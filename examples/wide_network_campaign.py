#!/usr/bin/env python
"""The "arbitrary wide networks" claim, measured — in parallel.

Grows the network from 12 to 96 sites (constant mean degree, constant
offered load) and tracks the per-job protocol cost of RTDS vs the
focused-addressing baseline whose periodic surplus *flooding* touches every
link. This is the experiment behind the paper's §3 remark: "our network may
be unbounded since we never broadcast over all the network".

The sweep's 8 cells go through the parallel campaign runtime
(`repro.experiments.parallel`): pass ``--jobs N`` to fan them across N
worker processes — the numbers are bit-for-bit identical either way.

Run:  python examples/wide_network_campaign.py [--jobs 4]   (~1 minute serial)
"""

import argparse
from dataclasses import replace

from repro import ExperimentConfig, RTDSConfig
from repro.experiments.parallel import cell_key, raise_on_failures, run_cells
from repro.experiments.reporting import format_table

BASE = ExperimentConfig(
    rho=0.6,
    duration=200.0,
    laxity_factor=3.0,
    rtds=RTDSConfig(h=2),
    seed=5,
)

SIZES = (12, 24, 48, 96)


def sweep_configs():
    """One fully-resolved config per (algorithm, network size) cell."""
    for algo in ("rtds", "focused"):
        for n in SIZES:
            yield replace(
                BASE,
                algorithm=algo,
                topology="erdos_renyi",
                topology_kwargs={
                    "n": n,
                    "p": min(1.0, 4.0 / (n - 1)),
                    "delay_range": (0.2, 1.0),
                },
                label=f"{algo}-{n}",
            )


def main(jobs: int = 1) -> None:
    """Run the sweep on ``jobs`` workers and print the scaling table."""
    cells = [(cell_key(cfg), cfg) for cfg in sweep_configs()]
    results = run_cells(cells, executor=jobs)
    raise_on_failures(results)
    rows = []
    for key, cfg in cells:
        m = results[key].metrics
        rows.append(
            {
                "algorithm": cfg.algorithm,
                "sites": cfg.topology_kwargs["n"],
                "jobs": int(m["n_jobs"]),
                "GR": round(m["guarantee_ratio"], 3),
                "msg/job": round(m["messages_per_job"], 1),
                "setup_msg": int(m["setup_messages"]),
            }
        )
    print(
        format_table(
            rows,
            title=(
                "Scaling the network at constant degree and load\n"
                "RTDS: sphere-bounded traffic.  focused: network-wide flooding."
            ),
        )
    )
    rtds = [r for r in rows if r["algorithm"] == "rtds"]
    focused = [r for r in rows if r["algorithm"] == "focused"]
    print()
    print(
        f"RTDS msg/job {rtds[0]['msg/job']} -> {rtds[-1]['msg/job']} "
        f"as N grows {SIZES[0]} -> {SIZES[-1]} (bounded by the sphere);"
    )
    print(
        f"focused msg/job {focused[0]['msg/job']} -> {focused[-1]['msg/job']} "
        "(grows with the network: unusable when the network is wide)."
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=1, help="worker processes")
    main(parser.parse_args().jobs)
