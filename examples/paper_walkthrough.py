#!/usr/bin/env python
"""The paper's worked example (§12), reproduced end to end.

Walks through exactly what the paper's Figures 2-4 and Table 1 show:

* the 5-task job DAG (Fig. 2),
* the Mapper's list scheduling onto two logical processors with surpluses
  I1=0.5, I2=0.4 and ACS diameter ω=3 (Fig. 3, makespan M=33),
* the optimistic schedule S* at 100% surplus (Fig. 4, M*=19),
* the §12.2 adjustment: case (ii), scaling factor (d-r)/M = 2, giving the
  per-task windows of Table 1,
* finally, the same job pushed through the *live distributed protocol* on
  a simulated network (the Figure-1 flow).

Run:  python examples/paper_walkthrough.py
"""

from repro.experiments.paper_example import (
    PAPER_DEADLINE,
    fig3_schedule,
    fig4_schedule,
    paper_example_adjusted,
    run_fig1_scenario,
    table1_rows,
)
from repro.experiments.reporting import format_kv, format_table
from repro.graphs.generators import paper_example_dag
from repro.viz.dagviz import render_dag
from repro.viz.gantt import render_gantt, schedule_to_items


def main() -> None:
    print("=" * 72)
    print("Step 1 - the job (Figure 2)")
    print("=" * 72)
    print(render_dag(paper_example_dag()))

    print()
    print("=" * 72)
    print("Step 2 - Trial-Mapping by the Mapper (Figure 3)")
    print("=" * 72)
    print("list scheduling by critical path; EFT processor selection;")
    print("durations surplus-scaled (c/I); cross-processor comms = ω = 3")
    print()
    print(render_gantt(schedule_to_items(fig3_schedule()), title="schedule S"))

    print()
    print("=" * 72)
    print("Step 3 - the optimistic schedule S* (Figure 4)")
    print("=" * 72)
    print(render_gantt(schedule_to_items(fig4_schedule()), title="schedule S*"))

    print()
    print("=" * 72)
    print("Step 4 - release/deadline adjustment (Table 1)")
    print("=" * 72)
    tm, adj = paper_example_adjusted()
    print(
        format_kv(
            "classification",
            {
                "M (makespan of S)": tm.makespan,
                "M* (lower bound)": adj.mstar,
                "job window d - r": PAPER_DEADLINE,
                "case": f"{adj.case}  (M <= d-r: stretch by (d-r)/M = "
                f"{PAPER_DEADLINE / tm.makespan:g})",
            },
        )
    )
    print()
    rows = [
        {"ti": t, "ri": r0, "di": d0, "r(ti)": r1, "d(ti)": d1}
        for t, r0, d0, r1, d1 in sorted(table1_rows())
    ]
    print(format_table(rows, title="Table 1 - adjusted windows"))

    print()
    print("=" * 72)
    print("Step 5 - the live protocol (Figure 1 flow)")
    print("=" * 72)
    tracer, metrics, jid = run_fig1_scenario()
    for e in tracer.for_job(jid):
        print(repr(e))
    rec = metrics.jobs[jid]
    print()
    print(
        f"job {jid}: {rec.outcome.value}; tasks finished at "
        f"{sorted(round(v, 2) for v in rec.completions.values())}; "
        f"deadline {rec.deadline:.1f} met: {rec.met_deadline}"
    )


if __name__ == "__main__":
    main()
