#!/usr/bin/env python
"""Tuning the Computing Sphere: radius h and the §13 generalizations.

For a deployment you must pick:

* the PCS hop radius ``h`` (acceptance vs one-time construction cost vs
  per-job enrollment cost),
* whether to bound the ACS size,
* whether to run the preemptive local scheduler,
* the laxity-dispatching mode.

This example sweeps those knobs on one topology/workload and prints the
trade-off tables, ending with a recommendation rule of thumb.

Run:  python examples/sphere_tuning.py              (~1 minute)
"""

from dataclasses import replace

from repro import RTDSConfig
from repro.api import ExperimentConfig, run
from repro.experiments.evaluation import sweep_ablations, sweep_sphere_radius
from repro.experiments.reporting import format_table

BASE = ExperimentConfig(
    topology="grid",
    topology_kwargs={"rows": 5, "cols": 5, "delay_range": (0.2, 0.8)},
    rho=0.85,
    duration=250.0,
    laxity_factor=2.5,
    seed=77,
)


def main() -> None:
    print(
        format_table(
            sweep_sphere_radius(BASE, (1, 2, 3, 4)),
            title="PCS radius h: acceptance saturates, costs keep growing",
        )
    )
    print()
    print(
        format_table(
            sweep_ablations(BASE),
            title="§13 generalizations at rho=0.85, laxity 2.5",
        )
    )
    print()
    # The bounded-ACS variant deserves a closer look: cost vs acceptance.
    rows = []
    for cap in (2, 4, 8, None):
        cfg = replace(
            BASE,
            algorithm="rtds",
            rtds=RTDSConfig(h=2, max_acs_size=cap),
            label=f"acs<={cap}" if cap else "acs unbounded",
        )
        s = run(cfg).summary
        rows.append(
            {
                "ACS bound": cap or "none",
                "GR": round(s.guarantee_ratio, 4),
                "msg/job": round(s.messages_per_job, 2),
                "mean |ACS|": round(s.mean_acs_size, 2) if s.mean_acs_size == s.mean_acs_size else "-",
            }
        )
    print(format_table(rows, title="Bounding the ACS: most of the benefit, fraction of the traffic"))
    print()
    print(
        "rule of thumb: h=2 captures nearly all acceptance benefit; bounding\n"
        "the ACS to ~4 members keeps per-job traffic minimal; enable the\n"
        "preemptive tests when the workload has tight, overlapping windows."
    )


if __name__ == "__main__":
    main()
