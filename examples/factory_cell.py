#!/usr/bin/env python
"""Domain scenario: a factory robotics cell with a hot inspection station.

The paper motivates RTDS with loosely-coupled real-time systems (robotics,
avionics). This example models a plausible one: a 4x4 grid of cell
controllers where two stations (the vision-inspection pair) generate most
of the sporadic work — each part arrival spawns a small processing DAG
(capture -> {segment, classify} -> plan -> actuate) with a hard deadline.

The hot stations saturate quickly; whether their jobs are *guaranteed*
depends entirely on cooperation. We compare:

* local-only  (no cooperation: hot stations drop work),
* RTDS        (Computing Spheres around each station),
* the centralized oracle (upper bound; impractical on a real cell bus).

Run:  python examples/factory_cell.py
"""

from dataclasses import replace

import numpy as np

from repro import RTDSConfig
from repro.api import ExperimentConfig, run
from repro.experiments.reporting import format_kv, format_table
from repro.graphs.dag import Dag, Task


def inspection_dag(rng: np.random.Generator) -> Dag:
    """capture -> {segment, classify} -> plan -> actuate, ~jittered costs."""
    c = lambda lo, hi: float(rng.uniform(lo, hi))
    tasks = [
        Task("capture", c(1.0, 2.0)),
        Task("segment", c(2.0, 5.0)),
        Task("classify", c(2.0, 6.0)),
        Task("plan", c(1.0, 3.0)),
        Task("actuate", c(0.5, 1.5)),
    ]
    edges = [
        ("capture", "segment"),
        ("capture", "classify"),
        ("segment", "plan"),
        ("classify", "plan"),
        ("plan", "actuate"),
    ]
    return Dag(tasks, edges, name="inspect")


BASE = ExperimentConfig(
    topology="grid",
    topology_kwargs={"rows": 4, "cols": 4, "delay_range": (0.1, 0.4)},
    rho=0.75,
    duration=400.0,
    laxity_factor=2.5,
    # 80% of arrivals hit the two inspection stations (sites 0 and 1)
    hot_fraction=0.8,
    hot_sites=2,
    dag_factory=inspection_dag,
    rtds=RTDSConfig(h=2),
    seed=2024,
)


def main() -> None:
    rows = []
    per_algo = {}
    for algo in ("local", "rtds", "centralized"):
        cfg = replace(BASE, algorithm=algo, label=algo)
        res = run(cfg)
        per_algo[algo] = res
        rows.append(res.summary.row())

    print(
        format_table(
            rows,
            title=(
                "Factory cell: 4x4 grid, 80% of jobs arrive at 2 hot stations\n"
                "(GR = fraction of part-processing jobs guaranteed)"
            ),
        )
    )

    local, rtds = per_algo["local"].summary, per_algo["rtds"].summary
    print()
    print(
        format_kv(
            "cooperation benefit (RTDS vs local-only)",
            {
                "jobs guaranteed": f"{rtds.n_accepted} vs {local.n_accepted}",
                "guarantee ratio": f"{rtds.guarantee_ratio:.3f} vs {local.guarantee_ratio:.3f}",
                "extra jobs saved by spheres": rtds.n_accepted - local.n_accepted,
                "price in messages/job": round(rtds.messages_per_job, 1),
            },
        )
    )

    # where did the offloaded work land?
    res = per_algo["rtds"]
    helpers = {}
    for rec in res.collector.records():
        if rec.outcome.value == "accepted_distributed":
            for h in rec.hosts:
                if h not in (0, 1):
                    helpers[h] = helpers.get(h, 0) + 1
    print()
    top = sorted(helpers.items(), key=lambda kv: -kv[1])[:5]
    print(
        "busiest helper stations (site: distributed jobs hosted): "
        + ", ".join(f"{s}: {n}" for s, n in top)
    )


if __name__ == "__main__":
    main()
