#!/usr/bin/env python
"""Bursty arrivals: when admission control earns its keep.

A smooth Poisson stream at ρ=0.6 leaves slack everywhere; real sporadic
workloads arrive in showers (alarm storms, frame batches). This example
builds a custom workload with the on/off modulated arrival process and
pushes it through RTDS and local-only on the same network, showing that the
sphere's value concentrates exactly inside the bursts.

It also demonstrates the lower-level driving API: building a Workload by
hand and submitting it to a hand-constructed network (instead of the
one-call `run_experiment`).

Run:  python examples/bursty_inspection.py
"""

import numpy as np

from repro.baselines.local_only import LocalOnlySite
from repro.core.config import RTDSConfig
from repro.core.rtds import RTDSSite
from repro.experiments.reporting import format_kv, format_table
from repro.graphs.workflows import mapreduce_dag
from repro.metrics.collector import MetricsCollector
from repro.simnet.engine import Simulator
from repro.simnet.topology import build_network, erdos_renyi
from repro.workloads.arrivals import bursty_arrivals
from repro.workloads.deadlines import assign_deadline

N_SITES = 12
PERIOD, DUTY = 40.0, 0.25
DURATION = 400.0


def make_workload(seed: int):
    """Bursty job stream: showers of small map-reduce jobs on site 0."""
    rng = np.random.default_rng(seed)
    times = bursty_arrivals(
        rng, rate_on=0.6, rate_off=0.05, period=PERIOD, duty=DUTY,
        start=0.0, end=DURATION,
    )
    jobs = []
    for jid, t in enumerate(times):
        dag = mapreduce_dag(int(rng.integers(3, 7)), 2, rng, c_range=(1.0, 5.0))
        deadline = assign_deadline(dag, float(t), 3.0, rng, jitter=0.2)
        jobs.append((jid, float(t), dag, deadline))
    return jobs


def drive(site_factory, seed: int):
    sim = Simulator()
    metrics = MetricsCollector()
    topo = erdos_renyi(N_SITES, 0.3, np.random.default_rng(7), delay_range=(0.2, 0.8))
    net = build_network(topo, sim, lambda sid, n: site_factory(sid, n, metrics))
    for sid in net.site_ids():
        net.site(sid).start()
    sim.run()
    shift = sim.now
    for jid, t, dag, deadline in make_workload(seed):
        site = net.site(0)  # the bursty source
        sim.schedule_at(shift + t, lambda s=site, j=jid, d=dag, dl=deadline: s.submit_job(j, d, shift + dl))
    sim.run(until=shift + DURATION + 300.0)
    return metrics


def main() -> None:
    cfg = RTDSConfig(h=2)
    rtds = drive(lambda sid, n, m: RTDSSite(sid, n, cfg, metrics=m), seed=11)
    local = drive(lambda sid, n, m: LocalOnlySite(sid, n, metrics=m), seed=11)

    rows = []
    for name, m in (("rtds", rtds), ("local", local)):
        rows.append(
            {
                "algorithm": name,
                "jobs": m.n_arrived(),
                "GR": round(m.guarantee_ratio(), 4),
                "effGR": round(m.effective_ratio(), 4),
            }
        )
    print(format_table(rows, title="Bursty showers on one site (identical workloads)"))

    # Per-burst breakdown: acceptance inside vs outside the on-windows.
    # (Arrivals were shifted by the setup time, so split by relative phase.)
    def burst_split_shifted(m):
        recs = m.records()
        if not recs:
            return float("nan"), float("nan")
        t0 = min(r.arrival for r in recs)
        inside, outside = [], []
        for r in recs:
            phase = (r.arrival - t0) % PERIOD
            (inside if phase < DUTY * PERIOD else outside).append(r)
        gr = lambda rs: (sum(1 for r in rs if r.outcome.accepted) / len(rs)) if rs else float("nan")
        return gr(inside), gr(outside)

    r_in, r_out = burst_split_shifted(rtds)
    l_in, l_out = burst_split_shifted(local)
    print()
    print(
        format_kv(
            "guarantee ratio inside vs outside bursts",
            {
                "rtds inside bursts": f"{r_in:.3f}",
                "rtds between bursts": f"{r_out:.3f}",
                "local inside bursts": f"{l_in:.3f}",
                "local between bursts": f"{l_out:.3f}",
            },
        )
    )
    print()
    print(
        "the sphere's value concentrates in the showers: between bursts both\n"
        "schemes cope, inside them only cooperation keeps acceptance up."
    )


if __name__ == "__main__":
    main()
