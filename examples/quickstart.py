#!/usr/bin/env python
"""Quickstart: run RTDS on a small network and read the results.

This is the 60-second tour of the library:

1. describe an experiment declaratively (topology + workload + algorithm),
2. run it (deterministic: same seed -> same run, bit for bit),
3. inspect the summary and individual job records.

Run:  python examples/quickstart.py
"""

from repro import JobOutcome, RTDSConfig
from repro.api import ExperimentConfig, run
from repro.experiments.reporting import format_kv, format_table


def main() -> None:
    config = ExperimentConfig(
        # a 16-site random network with mean degree ~4 and link delays that
        # are small next to task execution times (the regime where
        # distributing work can beat a deadline)
        topology="erdos_renyi",
        topology_kwargs={"n": 16, "p": 0.25, "delay_range": (0.2, 1.0)},
        algorithm="rtds",
        rtds=RTDSConfig(h=2),       # Computing Sphere hop radius
        rho=0.7,                    # offered load: 70% of aggregate capacity
        duration=300.0,             # workload window (simulated time)
        laxity_factor=3.0,          # deadline = arrival + 3 x critical path
        seed=42,
    )

    result = run(config)
    s = result.summary

    print(format_table([s.row()], title="RTDS on 16 sites, rho=0.7"))
    print()
    print(
        format_kv(
            "what happened",
            {
                "jobs arrived": s.n_jobs,
                "guaranteed locally (§5 local test)": s.n_accepted_local,
                "guaranteed via Computing Spheres": s.n_accepted_distributed,
                "rejected": s.n_rejected,
                "guarantee ratio": s.guarantee_ratio,
                "completed by deadline": s.n_completed_in_time,
                "guarantees violated (missed)": s.n_missed,
                "protocol messages per job": s.messages_per_job,
                "PCS construction messages (one-time)": s.setup_messages,
            },
        )
    )

    # Individual job records are available for drill-down:
    distributed = [
        r for r in result.collector.records()
        if r.outcome is JobOutcome.ACCEPTED_DISTRIBUTED
    ]
    if distributed:
        r = distributed[0]
        print()
        print(
            f"example distributed job #{r.job}: arrived at site {r.origin} "
            f"(t={r.arrival:.1f}), ran on sites {r.hosts}, ACS size {r.acs_size}, "
            f"finished at t={r.completion_time:.1f} "
            f"(deadline {r.deadline:.1f}, met={r.met_deadline})"
        )


if __name__ == "__main__":
    main()
