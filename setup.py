from setuptools import find_packages, setup

setup(
    name="rtds-repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Real-Time Distributed Scheduling of Precedence "
        "Graphs on Arbitrary Wide Networks' (Butelle, Hakem, Finta; IPPS "
        "2007): the RTDS protocol, baselines, a deterministic network "
        "simulator, fault injection, and the paper's experiments"
    ),
    long_description=open("README.md").read(),
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    extras_require={"bench": ["pytest", "pytest-benchmark"]},
    entry_points={"console_scripts": ["rtds=repro.cli:main"]},
)
